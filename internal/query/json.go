package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"

	"pak/internal/encode"
	"pak/internal/ratutil"
)

// JSON (de)serialization of query specs. A query document is a flat
// envelope carrying the kind, the request parameters as rational
// strings, and the condition as a fact-expression document (the schema
// of encode.ParseFact):
//
//	{"kind":"constraint","agent":"Alice","action":"fire",
//	 "threshold":"95/100",
//	 "fact":{"op":"and","args":[
//	   {"op":"does","agent":"Alice","action":"fire"},
//	   {"op":"does","agent":"Bob","action":"fire"}]}}
//
// A batch document is a JSON array of query documents. Queries whose
// facts are opaque Go predicates (logic.Atom and friends) evaluate but
// do not serialize; Marshal returns encode.ErrOpaqueFact for them.

// ErrBadQuery indicates a malformed query document.
var ErrBadQuery = errors.New("query: malformed query document")

// queryDoc is the JSON envelope of a single query.
type queryDoc struct {
	Kind    Kind    `json:"kind"`
	Theorem Theorem `json:"theorem,omitempty"`
	Agent   string  `json:"agent,omitempty"`
	Action  string  `json:"action,omitempty"`
	Local   string  `json:"local,omitempty"`
	Run     *int    `json:"run,omitempty"`
	// Threshold doubles as ConstraintQuery.Threshold and ThresholdQuery.P
	// and TheoremQuery.P — each kind has at most one probability
	// threshold parameter.
	Threshold string          `json:"threshold,omitempty"`
	Delta     string          `json:"delta,omitempty"`
	Eps       string          `json:"eps,omitempty"`
	Fact      json.RawMessage `json:"fact,omitempty"`
}

// ratField renders an optional rational parameter.
func ratField(p *big.Rat) string {
	if p == nil {
		return ""
	}
	return p.RatString()
}

// parseRatField parses an optional rational parameter.
func parseRatField(name, s string) (*big.Rat, error) {
	if s == "" {
		return nil, nil
	}
	p, err := ratutil.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadQuery, name, err)
	}
	return p, nil
}

// docOf converts a query to its JSON envelope, serializing the fact.
func docOf(q Query) (queryDoc, error) {
	if err := q.validate(); err != nil {
		return queryDoc{}, err
	}
	switch v := q.(type) {
	case BeliefQuery:
		fact, err := encode.MarshalFact(v.Fact)
		if err != nil {
			return queryDoc{}, err
		}
		return queryDoc{Kind: KindBelief, Agent: v.Agent, Local: v.Local, Action: v.Action, Fact: fact}, nil
	case ConstraintQuery:
		fact, err := encode.MarshalFact(v.Fact)
		if err != nil {
			return queryDoc{}, err
		}
		return queryDoc{Kind: KindConstraint, Agent: v.Agent, Action: v.Action,
			Threshold: ratField(v.Threshold), Fact: fact}, nil
	case ExpectationQuery:
		fact, err := encode.MarshalFact(v.Fact)
		if err != nil {
			return queryDoc{}, err
		}
		return queryDoc{Kind: KindExpectation, Agent: v.Agent, Action: v.Action, Fact: fact}, nil
	case ThresholdQuery:
		fact, err := encode.MarshalFact(v.Fact)
		if err != nil {
			return queryDoc{}, err
		}
		return queryDoc{Kind: KindThreshold, Agent: v.Agent, Action: v.Action,
			Threshold: ratField(v.P), Fact: fact}, nil
	case TheoremQuery:
		fact, err := encode.MarshalFact(v.Fact)
		if err != nil {
			return queryDoc{}, err
		}
		return queryDoc{Kind: KindTheorem, Theorem: v.Theorem, Agent: v.Agent, Action: v.Action,
			Threshold: ratField(v.P), Delta: ratField(v.Delta), Eps: ratField(v.Eps), Fact: fact}, nil
	case IndependenceQuery:
		fact, err := encode.MarshalFact(v.Fact)
		if err != nil {
			return queryDoc{}, err
		}
		return queryDoc{Kind: KindIndependence, Agent: v.Agent, Action: v.Action, Fact: fact}, nil
	case TimelineQuery:
		fact, err := encode.MarshalFact(v.Fact)
		if err != nil {
			return queryDoc{}, err
		}
		run := v.Run
		return queryDoc{Kind: KindTimeline, Agent: v.Agent, Run: &run, Fact: fact}, nil
	case MetricQuery:
		return queryDoc{}, fmt.Errorf("%w: %s is an opaque Go function and does not serialize", ErrBadQuery, v)
	default:
		return queryDoc{}, fmt.Errorf("%w: unknown query type %T", ErrBadQuery, q)
	}
}

// fromDoc converts a JSON envelope back to a query.
func fromDoc(doc queryDoc) (Query, error) {
	if len(doc.Fact) == 0 {
		return nil, fmt.Errorf("%w: kind %q requires a fact", ErrBadQuery, doc.Kind)
	}
	fact, err := encode.ParseFact(doc.Fact)
	if err != nil {
		return nil, err
	}
	threshold, err := parseRatField("threshold", doc.Threshold)
	if err != nil {
		return nil, err
	}
	var q Query
	switch doc.Kind {
	case KindBelief:
		q = BeliefQuery{Fact: fact, Agent: doc.Agent, Local: doc.Local, Action: doc.Action}
	case KindConstraint:
		q = ConstraintQuery{Fact: fact, Agent: doc.Agent, Action: doc.Action, Threshold: threshold}
	case KindExpectation:
		q = ExpectationQuery{Fact: fact, Agent: doc.Agent, Action: doc.Action}
	case KindThreshold:
		q = ThresholdQuery{Fact: fact, Agent: doc.Agent, Action: doc.Action, P: threshold}
	case KindTheorem:
		delta, derr := parseRatField("delta", doc.Delta)
		if derr != nil {
			return nil, derr
		}
		eps, eerr := parseRatField("eps", doc.Eps)
		if eerr != nil {
			return nil, eerr
		}
		q = TheoremQuery{Theorem: doc.Theorem, Fact: fact, Agent: doc.Agent, Action: doc.Action,
			P: threshold, Delta: delta, Eps: eps}
	case KindIndependence:
		q = IndependenceQuery{Fact: fact, Agent: doc.Agent, Action: doc.Action}
	case KindTimeline:
		run := 0
		if doc.Run != nil {
			run = *doc.Run
		}
		q = TimelineQuery{Fact: fact, Agent: doc.Agent, Run: run}
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadQuery, doc.Kind)
	}
	if err := q.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return q, nil
}

// Marshal renders one query as a JSON document.
func Marshal(q Query) ([]byte, error) {
	doc, err := docOf(q)
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("query.Marshal: %w", err)
	}
	return out, nil
}

// MarshalCanonical renders one query as its canonical compact JSON
// document: the same envelope as Marshal, one deterministic byte
// string per query value, no insignificant whitespace. This is the
// store-key form — internal/store addresses results by
// (canonical system spec × this rendering), so it must stay a pure
// function of the query value. Queries carrying opaque Go facts do
// not serialize (encode.ErrOpaqueFact) and therefore have no store
// address.
func MarshalCanonical(q Query) ([]byte, error) {
	doc, err := docOf(q)
	if err != nil {
		return nil, err
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("query.MarshalCanonical: %w", err)
	}
	return out, nil
}

// Parse parses one query document.
func Parse(data []byte) (Query, error) {
	var doc queryDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return fromDoc(doc)
}

// MarshalBatch renders a query list as a JSON array document.
func MarshalBatch(qs []Query) ([]byte, error) {
	docs := make([]queryDoc, len(qs))
	for i, q := range qs {
		doc, err := docOf(q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		docs[i] = doc
	}
	out, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("query.MarshalBatch: %w", err)
	}
	return out, nil
}

// ParseBatch parses a JSON array of query documents.
func ParseBatch(data []byte) ([]Query, error) {
	var docs []queryDoc
	if err := json.Unmarshal(data, &docs); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	out := make([]Query, len(docs))
	for i, doc := range docs {
		q, err := fromDoc(doc)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}
