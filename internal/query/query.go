// Package query reifies the engine's analyses as first-class request
// values: every quantity and theorem check the paper attaches to a
// (system, fact, agent, action) tuple becomes a composable Query that
// evaluates to a uniform Result through one entry point, Eval, or in
// bulk through EvalBatch.
//
// The queries mirror the paper's analysis surface:
//
//   - BeliefQuery: β_i(φ) at a local state, or at every acting state of a
//     proper action (Definition 3.1);
//   - ConstraintQuery: µ_T(φ@α | α), optionally judged against a
//     threshold p (Definition 3.2);
//   - ExpectationQuery: E_µT(β_i(φ)@α | α) (Definition 6.1);
//   - ThresholdQuery: µ_T(β_i(φ)@α ≥ p | α);
//   - TheoremQuery: the machine checkers for Theorem 4.2 (sufficiency),
//     Lemma 5.1 (necessity), Theorem 6.2 (expectation), Theorem 7.1 /
//     Corollary 7.2 (PAK) and Lemma F.1 (KoP limit);
//   - IndependenceQuery: Definition 4.1 with Lemma 4.3's witnesses;
//   - TimelineQuery: the belief trajectory β_i(φ) along one run.
//
// Queries built from structural facts serialize to JSON (Marshal /
// Parse, MarshalBatch / ParseBatch), so analysis requests can be stored,
// shipped and replayed by the CLI tools; queries built around opaque Go
// predicates still evaluate but refuse to serialize.
//
// All numeric results are exact rationals; a Result additionally carries
// pass/fail verdicts, boolean diagnostics and witness run-sets.
package query

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Kind identifies a query's analysis family.
type Kind string

// The query kinds. The strings are the JSON "kind" values.
const (
	KindBelief       Kind = "belief"
	KindConstraint   Kind = "constraint"
	KindExpectation  Kind = "expectation"
	KindThreshold    Kind = "threshold"
	KindTheorem      Kind = "theorem"
	KindIndependence Kind = "independence"
	KindTimeline     Kind = "timeline"
	// KindMetric marks MetricQuery: an opaque Go metric evaluated over
	// the engine (in-process only; it refuses to serialize).
	KindMetric Kind = "metric"
	// KindEnvelope marks the result of EvalEnvelope: a min/max Range of
	// an inner query over an adversary space (see envelope.go).
	KindEnvelope Kind = "envelope"
)

// Theorem selects which of the paper's results a TheoremQuery checks.
type Theorem string

// The checkable results. The strings are the JSON "theorem" values.
const (
	// TheoremSufficiency is Theorem 4.2: belief ≥ p everywhere when
	// acting (plus independence) implies µ(φ@α | α) ≥ p.
	TheoremSufficiency Theorem = "sufficiency"
	// TheoremNecessity is Lemma 5.1: µ(φ@α | α) ≥ p (plus independence)
	// implies belief ≥ p at some acting state.
	TheoremNecessity Theorem = "necessity"
	// TheoremExpectation is Theorem 6.2, the paper's main result:
	// µ(φ@α | α) = E[β(φ)@α | α] under independence.
	TheoremExpectation Theorem = "expectation"
	// TheoremPAK is Theorem 7.1 (δ, ε) / Corollary 7.2 (δ = ε).
	TheoremPAK Theorem = "pak"
	// TheoremKoP is Lemma F.1, the probabilistic Knowledge of
	// Preconditions limit.
	TheoremKoP Theorem = "kop"
)

// Verdict is a query's pass/fail judgement, when it has one.
type Verdict string

// The verdict values. VerdictNone marks purely numeric results.
const (
	VerdictNone Verdict = ""
	VerdictPass Verdict = "pass"
	VerdictFail Verdict = "fail"
)

// Result is the uniform outcome of evaluating any Query. Which fields
// are populated depends on the query kind; Value and Verdict cover the
// common "one number, one judgement" shape.
type Result struct {
	// Kind echoes the query's kind.
	Kind Kind
	// Query describes the evaluated request (its String form).
	Query string
	// Value is the query's primary exact quantity (nil when the query
	// has no single headline number, e.g. per-state belief maps).
	Value *big.Rat
	// Values holds named auxiliary quantities: per-state beliefs, both
	// sides of a theorem, thresholds and bounds.
	Values map[string]*big.Rat
	// Verdict is the pass/fail judgement (VerdictNone when the query is
	// purely numeric).
	Verdict Verdict
	// Flags holds named boolean diagnostics (independence, premises, ...).
	Flags map[string]bool
	// Witness is the run-set substantiating the result, when one exists:
	// the φ@α event for constraints, the runs meeting the belief
	// threshold, the first independence violation's state occurrence.
	Witness *runset.Set
	// Timeline carries TimelineQuery trajectories.
	Timeline []core.TimelinePoint
	// Envelope carries an EvalEnvelope result's min/max range over the
	// adversary space (nil on every other kind).
	Envelope *Range
	// Estimate carries the approximate tier's sampled estimate (see
	// WithApprox): on an approx-stage frame it is the result; on an
	// exact-stage frame it rides along with the refined value, and
	// Flags[FlagCICovered] records the self-check. Nil outside approx
	// mode.
	Estimate *Estimate
	// Detail is a human-readable summary for reports.
	Detail string
	// Err records this query's evaluation error inside a batch (nil on
	// success). A failed query's other fields are zero.
	Err error
}

// Passed reports whether the result carries a passing verdict.
func (r Result) Passed() bool { return r.Verdict == VerdictPass }

// Query is an analysis request evaluable against a core.Engine. The
// interface is closed: the query types of this package are the complete
// set, which is what lets specs round-trip through JSON.
type Query interface {
	// Kind reports the query's analysis family.
	Kind() Kind
	// String describes the request for logs and Result.Query.
	String() string
	// validate checks the request's well-formedness before evaluation.
	validate() error
	// eval runs the request against the engine. ctx is advisory: most
	// queries run to completion regardless (one query is the unit of
	// cancellation), but evaluations dominated by a single deep engine
	// scan — today the Definition 4.1 independence scan — consult it at
	// a coarse interval so a deadline can cut even one query.
	eval(ctx context.Context, e *core.Engine) (Result, error)
}

// verdictOf maps a boolean judgement to a Verdict.
func verdictOf(ok bool) Verdict {
	if ok {
		return VerdictPass
	}
	return VerdictFail
}

// BeliefQuery asks for β_Agent(Fact). With Local set it targets that
// single state; with Action set (and Local empty) it targets every local
// state at which the agent performs the proper action, producing one
// value per state in Values, keyed by the state string.
type BeliefQuery struct {
	// Fact is φ.
	Fact logic.Fact
	// Agent is the believing agent i.
	Agent string
	// Local is the state ℓ at which to evaluate β_i(φ); empty means "at
	// every acting state of Action".
	Local string
	// Action is the proper action whose acting states are targeted when
	// Local is empty.
	Action string
}

// Kind reports KindBelief.
func (q BeliefQuery) Kind() Kind { return KindBelief }

// String describes the request.
func (q BeliefQuery) String() string {
	if q.Local != "" {
		return fmt.Sprintf("belief β_%s(%s) @ ℓ=%q", q.Agent, q.Fact, q.Local)
	}
	return fmt.Sprintf("belief β_%s(%s) @ acting states of %q", q.Agent, q.Fact, q.Action)
}

func (q BeliefQuery) validate() error {
	if q.Fact == nil || q.Agent == "" {
		return fmt.Errorf("query: belief requires fact and agent")
	}
	if (q.Local == "") == (q.Action == "") {
		return fmt.Errorf("query: belief requires exactly one of local or action")
	}
	return nil
}

func (q BeliefQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	// Warm the φ@ℓ extension under the request context before the
	// backend-generic body: the scan is the dominant cost, the ctx-bound
	// variant can abort mid-scan at a deadline, and a completed scan is
	// memoized so evalOn reuses it — evaluation never runs the scan
	// twice, and never runs it past the context's expiry.
	if q.Local != "" {
		if _, err := e.FactAtLocalCtx(ctx, q.Fact, q.Agent, q.Local); err != nil && core.IsContextErr(err) {
			return Result{}, err
		}
	}
	return q.evalOn(ctx, e)
}

// evalOn is the backend-generic body: both engines answer through the
// beliefSolver surface, so enum and lp results share one assembly path.
func (q BeliefQuery) evalOn(_ context.Context, e beliefSolver) (Result, error) {
	res := Result{Kind: q.Kind(), Query: q.String()}
	if q.Local != "" {
		bel, err := e.Belief(q.Fact, q.Agent, q.Local)
		if err != nil {
			return Result{}, err
		}
		res.Value = bel
		res.Detail = fmt.Sprintf("β = %s", bel.RatString())
		return res, nil
	}
	byState, err := e.BeliefByActionState(q.Fact, q.Agent, q.Action)
	if err != nil {
		return Result{}, err
	}
	res.Values = make(map[string]*big.Rat, len(byState))
	states := make([]string, 0, len(byState))
	for state, bel := range byState {
		res.Values[state] = bel
		states = append(states, state)
	}
	sort.Strings(states)
	parts := make([]string, len(states))
	for i, s := range states {
		parts[i] = fmt.Sprintf("β@%q=%s", s, byState[s].RatString())
	}
	res.Detail = strings.Join(parts, " ")
	return res, nil
}

// ConstraintQuery asks for µ_T(Fact@Action | Action), the left-hand side
// of a probabilistic constraint. With Threshold set the result is judged
// pass/fail against µ ≥ p. The witness is the φ@α event.
type ConstraintQuery struct {
	// Fact is φ.
	Fact logic.Fact
	// Agent and Action identify the proper action α.
	Agent  string
	Action string
	// Threshold is the optional constraint threshold p.
	Threshold *big.Rat
}

// Kind reports KindConstraint.
func (q ConstraintQuery) Kind() Kind { return KindConstraint }

// String describes the request.
func (q ConstraintQuery) String() string {
	s := fmt.Sprintf("constraint µ(%s @ %s | %s) for %s", q.Fact, q.Action, q.Action, q.Agent)
	if q.Threshold != nil {
		s += fmt.Sprintf(" ≥ %s", q.Threshold.RatString())
	}
	return s
}

func (q ConstraintQuery) validate() error {
	if q.Fact == nil || q.Agent == "" || q.Action == "" {
		return fmt.Errorf("query: constraint requires fact, agent and action")
	}
	if q.Threshold != nil && !ratutil.IsProb(q.Threshold) {
		return fmt.Errorf("query: constraint threshold %s not in [0,1]", q.Threshold.RatString())
	}
	return nil
}

func (q ConstraintQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	// Warm the φ@α extension under the request context (see
	// BeliefQuery.eval): a deadline aborts the scan mid-run, a completed
	// scan is memoized for evalOn's ConstraintProb and FactAtAction.
	// Non-context errors fall through to evalOn so domain failures keep
	// their single reporting path.
	if _, err := e.FactAtActionCtx(ctx, q.Fact, q.Agent, q.Action); err != nil && core.IsContextErr(err) {
		return Result{}, err
	}
	return q.evalOn(ctx, e)
}

// evalOn is the backend-generic body shared by both engines.
func (q ConstraintQuery) evalOn(_ context.Context, e beliefSolver) (Result, error) {
	mu, err := e.ConstraintProb(q.Fact, q.Agent, q.Action)
	if err != nil {
		return Result{}, err
	}
	witness, err := e.FactAtAction(q.Fact, q.Agent, q.Action)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Kind:    q.Kind(),
		Query:   q.String(),
		Value:   mu,
		Witness: witness,
		Detail:  fmt.Sprintf("µ = %s", mu.RatString()),
	}
	if q.Threshold != nil {
		res.Verdict = verdictOf(ratutil.Geq(mu, q.Threshold))
		res.Values = map[string]*big.Rat{"threshold": ratutil.Copy(q.Threshold)}
		res.Detail += fmt.Sprintf(" (≥ %s: %s)", q.Threshold.RatString(), res.Verdict)
	}
	return res, nil
}

// ExpectationQuery asks for E_µT(β_Agent(Fact)@Action | Action), the
// expected degree of belief when acting (Definition 6.1).
type ExpectationQuery struct {
	// Fact is φ.
	Fact logic.Fact
	// Agent and Action identify the proper action α.
	Agent  string
	Action string
}

// Kind reports KindExpectation.
func (q ExpectationQuery) Kind() Kind { return KindExpectation }

// String describes the request.
func (q ExpectationQuery) String() string {
	return fmt.Sprintf("expectation E[β_%s(%s) @ %s | %s]", q.Agent, q.Fact, q.Action, q.Action)
}

func (q ExpectationQuery) validate() error {
	if q.Fact == nil || q.Agent == "" || q.Action == "" {
		return fmt.Errorf("query: expectation requires fact, agent and action")
	}
	return nil
}

func (q ExpectationQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	exp, err := e.ExpectedBelief(q.Fact, q.Agent, q.Action)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Kind:   q.Kind(),
		Query:  q.String(),
		Value:  exp,
		Detail: fmt.Sprintf("E[β] = %s", exp.RatString()),
	}, nil
}

// ThresholdQuery asks for µ_T(β_Agent(Fact)@Action ≥ P | Action): the
// measure of acting runs at which the belief meets the threshold. The
// witness is that event.
type ThresholdQuery struct {
	// Fact is φ.
	Fact logic.Fact
	// Agent and Action identify the proper action α.
	Agent  string
	Action string
	// P is the belief threshold.
	P *big.Rat
}

// Kind reports KindThreshold.
func (q ThresholdQuery) Kind() Kind { return KindThreshold }

// String describes the request.
func (q ThresholdQuery) String() string {
	p := "?"
	if q.P != nil {
		p = q.P.RatString()
	}
	return fmt.Sprintf("threshold µ(β_%s(%s) @ %s ≥ %s | %s)", q.Agent, q.Fact, q.Action, p, q.Action)
}

func (q ThresholdQuery) validate() error {
	if q.Fact == nil || q.Agent == "" || q.Action == "" {
		return fmt.Errorf("query: threshold requires fact, agent and action")
	}
	if q.P == nil || !ratutil.IsProb(q.P) {
		return fmt.Errorf("query: threshold requires p in [0,1]")
	}
	return nil
}

func (q ThresholdQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	return q.evalOn(ctx, e)
}

// evalOn is the backend-generic body shared by both engines.
func (q ThresholdQuery) evalOn(_ context.Context, e beliefSolver) (Result, error) {
	tm, err := e.ThresholdMeasure(q.Fact, q.Agent, q.Action, q.P)
	if err != nil {
		return Result{}, err
	}
	witness, err := e.BeliefThresholdEvent(q.Fact, q.Agent, q.Action, q.P)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Kind:    q.Kind(),
		Query:   q.String(),
		Value:   tm,
		Values:  map[string]*big.Rat{"p": ratutil.Copy(q.P)},
		Witness: witness,
		Detail:  fmt.Sprintf("µ(β ≥ %s | α) = %s", q.P.RatString(), tm.RatString()),
	}, nil
}

// TheoremQuery machine-checks one of the paper's results on the system.
// The verdict is pass when the theorem's implication holds there (it
// must, whenever the hypotheses are met — a fail is a counterexample to
// the paper). P parameterizes sufficiency and necessity; Delta and Eps
// parameterize PAK (leave Delta nil for the Corollary 7.2 form δ = ε).
type TheoremQuery struct {
	// Theorem selects the result to check.
	Theorem Theorem
	// Fact is φ.
	Fact logic.Fact
	// Agent and Action identify the proper action α.
	Agent  string
	Action string
	// P is the threshold for sufficiency (Theorem 4.2) and necessity
	// (Lemma 5.1).
	P *big.Rat
	// Delta and Eps are Theorem 7.1's parameters; Eps alone selects
	// Corollary 7.2 (δ = ε).
	Delta, Eps *big.Rat
}

// Kind reports KindTheorem.
func (q TheoremQuery) Kind() Kind { return KindTheorem }

// String describes the request.
func (q TheoremQuery) String() string {
	return fmt.Sprintf("theorem %s on µ(%s @ %s | %s) for %s", q.Theorem, q.Fact, q.Action, q.Action, q.Agent)
}

func (q TheoremQuery) validate() error {
	if q.Fact == nil || q.Agent == "" || q.Action == "" {
		return fmt.Errorf("query: theorem requires fact, agent and action")
	}
	switch q.Theorem {
	case TheoremSufficiency, TheoremNecessity:
		if q.P == nil || !ratutil.IsProb(q.P) {
			return fmt.Errorf("query: theorem %s requires p in [0,1]", q.Theorem)
		}
	case TheoremExpectation, TheoremKoP:
		// No parameters.
	case TheoremPAK:
		if q.Eps == nil || !ratutil.IsProb(q.Eps) {
			return fmt.Errorf("query: theorem pak requires eps in [0,1]")
		}
		if q.Delta != nil && !ratutil.IsProb(q.Delta) {
			return fmt.Errorf("query: theorem pak delta %s not in [0,1]", q.Delta.RatString())
		}
	default:
		return fmt.Errorf("query: unknown theorem %q", q.Theorem)
	}
	return nil
}

func (q TheoremQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	res := Result{Kind: q.Kind(), Query: q.String()}
	switch q.Theorem {
	case TheoremSufficiency:
		rep, err := e.CheckSufficiency(q.Fact, q.Agent, q.Action, q.P)
		if err != nil {
			return Result{}, err
		}
		res.Verdict = verdictOf(rep.Holds())
		res.Value = rep.ConstraintProb
		res.Values = map[string]*big.Rat{
			"p":         rep.Threshold,
			"minBelief": rep.MinBelief,
		}
		res.Flags = map[string]bool{
			"independent":   rep.Independent,
			"premiseMet":    rep.PremiseMet,
			"constraintMet": rep.ConstraintMet,
		}
		res.Detail = rep.String()
	case TheoremNecessity:
		rep, err := e.CheckNecessity(q.Fact, q.Agent, q.Action, q.P)
		if err != nil {
			return Result{}, err
		}
		res.Verdict = verdictOf(rep.Holds())
		res.Value = rep.ConstraintProb
		res.Values = map[string]*big.Rat{
			"p":         rep.Threshold,
			"maxBelief": rep.MaxBelief,
		}
		res.Flags = map[string]bool{
			"independent": rep.Independent,
			"hasWitness":  rep.Witness != "",
		}
		res.Detail = rep.String()
	case TheoremExpectation:
		rep, err := e.CheckExpectation(q.Fact, q.Agent, q.Action)
		if err != nil {
			return Result{}, err
		}
		res.Verdict = verdictOf(rep.Holds())
		res.Value = rep.ConstraintProb
		res.Values = map[string]*big.Rat{
			"expectedBelief": rep.ExpectedBelief,
		}
		res.Flags = map[string]bool{
			"independent": rep.Independent,
			"equal":       rep.Equal(),
		}
		res.Detail = rep.String()
	case TheoremPAK:
		delta := q.Delta
		if delta == nil {
			delta = q.Eps // Corollary 7.2 form
		}
		rep, err := e.CheckPAK(q.Fact, q.Agent, q.Action, delta, q.Eps)
		if err != nil {
			return Result{}, err
		}
		res.Verdict = verdictOf(rep.Holds())
		res.Value = rep.ConstraintProb
		res.Values = map[string]*big.Rat{
			"delta":         rep.Delta,
			"eps":           rep.Eps,
			"threshold":     rep.Threshold,
			"beliefLevel":   rep.BeliefLevel,
			"beliefMeasure": rep.BeliefMeasure,
			"bound":         rep.Bound,
		}
		res.Flags = map[string]bool{
			"independent":   rep.Independent,
			"premiseMet":    rep.PremiseMet(),
			"conclusionMet": rep.ConclusionMet(),
		}
		res.Detail = rep.String()
		// Witness: the acting runs at which the belief reaches 1−ε.
		witness, werr := e.BeliefThresholdEvent(q.Fact, q.Agent, q.Action, rep.BeliefLevel)
		if werr != nil {
			return Result{}, werr
		}
		res.Witness = witness
	case TheoremKoP:
		rep, err := e.CheckKoPLimit(q.Fact, q.Agent, q.Action)
		if err != nil {
			return Result{}, err
		}
		res.Verdict = verdictOf(rep.Holds())
		res.Value = rep.ConstraintProb
		res.Values = map[string]*big.Rat{
			"minBelief": rep.MinBelief,
		}
		res.Flags = map[string]bool{
			"independent": rep.Independent,
			"alwaysKnows": rep.AlwaysKnows,
		}
		res.Detail = rep.String()
	default:
		return Result{}, fmt.Errorf("query: unknown theorem %q", q.Theorem)
	}
	return res, nil
}

// IndependenceQuery checks local-state independence (Definition 4.1) and
// Lemma 4.3's sufficient conditions for it. The verdict is pass when the
// fact is independent of the action; the witness is the occurrence event
// of the first violating local state, when one exists.
type IndependenceQuery struct {
	// Fact is φ.
	Fact logic.Fact
	// Agent and Action identify the proper action α.
	Agent  string
	Action string
}

// Kind reports KindIndependence.
func (q IndependenceQuery) Kind() Kind { return KindIndependence }

// String describes the request.
func (q IndependenceQuery) String() string {
	return fmt.Sprintf("independence of %s from %s for %s", q.Fact, q.Action, q.Agent)
}

func (q IndependenceQuery) validate() error {
	if q.Fact == nil || q.Agent == "" || q.Action == "" {
		return fmt.Errorf("query: independence requires fact, agent and action")
	}
	return nil
}

func (q IndependenceQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	report, err := e.LocalStateIndependenceCtx(ctx, q.Fact, q.Agent, q.Action)
	if err != nil {
		return Result{}, err
	}
	witness, err := e.ExplainIndependenceCtx(ctx, q.Fact, q.Agent, q.Action)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Kind:    q.Kind(),
		Query:   q.String(),
		Verdict: verdictOf(report.Independent),
		Flags: map[string]bool{
			"independent":   witness.Independent,
			"deterministic": witness.Deterministic,
			"pastBased":     witness.PastBased,
			"lemma43":       witness.Lemma43Consistent(),
		},
		Detail: report.String(),
	}
	if len(report.Violations) > 0 {
		// Witness: where the first violating local state occurs.
		a, ok := e.System().AgentIndex(q.Agent)
		if ok {
			if occ, _, occOK := e.System().Occurs(a, report.Violations[0].Local); occOK {
				res.Witness = occ
			}
		}
	}
	return res, nil
}

// TimelineQuery asks for the belief trajectory β_Agent(Fact) along run
// Run, one point per time step. Value is the belief at the final point.
type TimelineQuery struct {
	// Fact is φ.
	Fact logic.Fact
	// Agent is the believing agent.
	Agent string
	// Run is the run to traverse.
	Run int
}

// Kind reports KindTimeline.
func (q TimelineQuery) Kind() Kind { return KindTimeline }

// String describes the request.
func (q TimelineQuery) String() string {
	return fmt.Sprintf("timeline β_%s(%s) along run %d", q.Agent, q.Fact, q.Run)
}

func (q TimelineQuery) validate() error {
	if q.Fact == nil || q.Agent == "" {
		return fmt.Errorf("query: timeline requires fact and agent")
	}
	if q.Run < 0 {
		return fmt.Errorf("query: timeline run %d negative", q.Run)
	}
	return nil
}

// MetricQuery evaluates an arbitrary exact metric — an opaque Go
// function over the engine — as a first-class query, so ad-hoc
// quantities (custom threshold measures, derived beliefs) compose with
// EvalBatch and, chiefly, with EvalEnvelope's min/max folds. Like facts
// built from opaque predicates, a MetricQuery evaluates but refuses to
// serialize: it exists for in-process callers (internal/adversary's
// MetricEnvelope is its main client), never for the wire.
type MetricQuery struct {
	// Name labels the metric in Result.Query and error messages.
	Name string
	// Fn computes the metric on the engine.
	Fn func(e *core.Engine) (*big.Rat, error)
}

// Kind reports KindMetric.
func (q MetricQuery) Kind() Kind { return KindMetric }

// String describes the request.
func (q MetricQuery) String() string {
	name := q.Name
	if name == "" {
		name = "<unnamed>"
	}
	return fmt.Sprintf("metric %s", name)
}

func (q MetricQuery) validate() error {
	if q.Fn == nil {
		return fmt.Errorf("query: metric requires a function")
	}
	return nil
}

func (q MetricQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	v, err := q.Fn(e)
	if err != nil {
		return Result{}, err
	}
	if v == nil {
		return Result{}, fmt.Errorf("query: %s returned no value", q)
	}
	return Result{
		Kind:   q.Kind(),
		Query:  q.String(),
		Value:  ratutil.Copy(v),
		Detail: fmt.Sprintf("%s = %s", q, v.RatString()),
	}, nil
}

func (q TimelineQuery) eval(ctx context.Context, e *core.Engine) (Result, error) {
	points, err := e.BeliefTimeline(q.Fact, q.Agent, pps.RunID(q.Run))
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Kind:     q.Kind(),
		Query:    q.String(),
		Timeline: points,
	}
	if len(points) > 0 {
		last := points[len(points)-1]
		res.Value = ratutil.Copy(last.Belief)
		res.Detail = fmt.Sprintf("%d points, final β = %s", len(points), last.Belief.RatString())
	}
	return res, nil
}
