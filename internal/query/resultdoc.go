package query

// ResultDoc is the wire form of a Result: every exact rational rendered
// as its RatString, witnesses reduced to their run count, and the error
// flattened to a message. It is what the pakd service returns per query
// — lossy only where the in-process types are unserializable (the
// witness run-set itself) and lossless on every number, so a client can
// re-parse values with math/big.Rat.SetString without precision loss.
type ResultDoc struct {
	Kind    Kind              `json:"kind"`
	Query   string            `json:"query,omitempty"`
	Value   string            `json:"value,omitempty"`
	Values  map[string]string `json:"values,omitempty"`
	Verdict Verdict           `json:"verdict,omitempty"`
	Flags   map[string]bool   `json:"flags,omitempty"`
	// WitnessRuns counts the substantiating event's runs; -1 when the
	// result carries no witness (0 is a real, empty witness), so the
	// field is never omitted.
	WitnessRuns int                `json:"witnessRuns"`
	Timeline    []TimelinePointDoc `json:"timeline,omitempty"`
	// Envelope carries an envelope result's range (KindEnvelope only).
	Envelope *RangeDoc `json:"envelope,omitempty"`
	// Estimate carries the approximate tier's sampled estimate: the
	// whole result of an approx-stage frame, provenance on an
	// exact-stage frame (whose flags then include the ciCovered
	// self-check). Absent outside approx mode.
	Estimate *EstimateDoc `json:"estimate,omitempty"`
	Detail   string       `json:"detail,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// EstimateDoc is the wire form of a sampled estimate. Every numeric
// field is an exact rational's RatString — the radius is computed in
// integer arithmetic (montecarlo.RadiusRat), so the bytes here are a
// platform-independent pure function of the request and re-parse via
// big.Rat.SetString with zero drift.
type EstimateDoc struct {
	// P is the point estimate; [Lo, Hi] is the Hoeffding interval at
	// confidence 1-Delta, clamped to [0, 1].
	P      string `json:"p"`
	Radius string `json:"radius"`
	Lo     string `json:"lo"`
	Hi     string `json:"hi"`
	// N counts samples that hit the conditioning event; Samples is the
	// total budget spent. N = 0 marks the trivial [0, 1] interval.
	N       int `json:"n"`
	Samples int `json:"samples"`
	// Seed is the slot's derived seed: replaying the same query with
	// this seed and budget reproduces the estimate byte for byte.
	Seed int64 `json:"seed"`
	// Eps echoes the requested half-width (absent when the budget was
	// given directly); Delta is the CI failure probability.
	Eps   string `json:"eps,omitempty"`
	Delta string `json:"delta"`
}

// EstimateDocOf converts an Estimate to its wire form.
func EstimateDocOf(e *Estimate) *EstimateDoc {
	if e == nil {
		return nil
	}
	doc := &EstimateDoc{
		P:       e.P.RatString(),
		Radius:  e.Radius.RatString(),
		Lo:      e.Lo.RatString(),
		Hi:      e.Hi.RatString(),
		N:       e.N,
		Samples: e.Samples,
		Seed:    e.Seed,
		Delta:   e.Delta.RatString(),
	}
	if e.Eps != nil {
		doc.Eps = e.Eps.RatString()
	}
	return doc
}

// RangeDoc is the wire form of an envelope Range: exact bounds as
// RatStrings, the witness assignments by name, and the
// visited/total/skipped accounting that marks partial envelopes.
type RangeDoc struct {
	Min    string `json:"min,omitempty"`
	Max    string `json:"max,omitempty"`
	ArgMin string `json:"argMin,omitempty"`
	ArgMax string `json:"argMax,omitempty"`
	// Visited counts assignments whose result landed; Total is the
	// space size. Visited < Total labels a partial envelope (the sweep
	// was cut by a deadline or cancellation).
	Visited int `json:"visited"`
	Total   int `json:"total"`
	// Skipped lists assignments on which the quantity was undefined,
	// sorted by assignment index.
	Skipped []string `json:"skipped,omitempty"`
}

// RangeDocOf converts a Range to its wire form.
func RangeDocOf(r Range) RangeDoc {
	doc := RangeDoc{
		ArgMin:  r.ArgMin,
		ArgMax:  r.ArgMax,
		Visited: r.Visited,
		Total:   r.Total,
		Skipped: append([]string(nil), r.Skipped...),
	}
	if r.Min != nil {
		doc.Min = r.Min.RatString()
	}
	if r.Max != nil {
		doc.Max = r.Max.RatString()
	}
	return doc
}

// TimelinePointDoc is the wire form of one belief-timeline point.
type TimelinePointDoc struct {
	Time   int    `json:"time"`
	Local  string `json:"local"`
	Belief string `json:"belief"`
	Knows  bool   `json:"knows"`
}

// DocOf converts a Result to its wire form.
func DocOf(res Result) ResultDoc {
	doc := ResultDoc{
		Kind:        res.Kind,
		Query:       res.Query,
		Verdict:     res.Verdict,
		Detail:      res.Detail,
		WitnessRuns: -1,
	}
	if res.Err != nil {
		doc.Error = res.Err.Error()
	}
	if res.Value != nil {
		doc.Value = res.Value.RatString()
	}
	if len(res.Values) > 0 {
		doc.Values = make(map[string]string, len(res.Values))
		for k, v := range res.Values {
			doc.Values[k] = v.RatString()
		}
	}
	if len(res.Flags) > 0 {
		doc.Flags = make(map[string]bool, len(res.Flags))
		for k, v := range res.Flags {
			doc.Flags[k] = v
		}
	}
	if res.Witness != nil {
		doc.WitnessRuns = res.Witness.Count()
	}
	if res.Envelope != nil {
		env := RangeDocOf(*res.Envelope)
		doc.Envelope = &env
	}
	doc.Estimate = EstimateDocOf(res.Estimate)
	for _, p := range res.Timeline {
		doc.Timeline = append(doc.Timeline, TimelinePointDoc{
			Time: p.Time, Local: p.Local, Belief: p.Belief.RatString(), Knows: p.Knows,
		})
	}
	return doc
}

// DocsOf converts a result slice to wire form, preserving order.
func DocsOf(results []Result) []ResultDoc {
	out := make([]ResultDoc, len(results))
	for i, res := range results {
		out[i] = DocOf(res)
	}
	return out
}
