package query

import (
	"encoding/json"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// multiFixture builds two distinct systems with their theorem workloads:
// the 3-agent squad and the 2-agent squad (which degenerates to Example
// 1, so its headline constraint is pinned at 99/100).
func multiFixture(t *testing.T) []MultiItem {
	t.Helper()
	loss := ratutil.R(1, 10)
	items := make([]MultiItem, 0, 2)
	for _, n := range []int{3, 2} {
		sys, err := scenarios.NFiringSquadSystem(n, loss, false)
		if err != nil {
			t.Fatalf("NFiringSquadSystem(%d): %v", n, err)
		}
		all := scenarios.AllFireFact(n)
		items = append(items, MultiItem{
			Engine: core.New(sys),
			Queries: []Query{
				ConstraintQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
				ExpectationQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
				BeliefQuery{Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
				TheoremQuery{Theorem: TheoremExpectation, Fact: all, Agent: scenarios.General, Action: scenarios.ActFire},
				TheoremQuery{Theorem: TheoremPAK, Fact: all, Agent: scenarios.General, Action: scenarios.ActFire,
					Eps: ratutil.R(1, 4)},
			},
		})
	}
	return items
}

// requireEqualResults asserts exact agreement (order, kind, verdict,
// value, named values) between two result slabs.
func requireEqualResults(t *testing.T, got, want [][]Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("system count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("system %d: got %d results, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			g, w := got[i][j], want[i][j]
			if g.Kind != w.Kind || g.Verdict != w.Verdict {
				t.Errorf("system %d query %d: kind/verdict (%s,%s), want (%s,%s)",
					i, j, g.Kind, g.Verdict, w.Kind, w.Verdict)
			}
			if (g.Value == nil) != (w.Value == nil) || (g.Value != nil && g.Value.Cmp(w.Value) != 0) {
				t.Errorf("system %d query %d: value %v, want %v", i, j, g.Value, w.Value)
			}
			if len(g.Values) != len(w.Values) {
				t.Errorf("system %d query %d: %d named values, want %d", i, j, len(g.Values), len(w.Values))
				continue
			}
			for k, wv := range w.Values {
				if gv, ok := g.Values[k]; !ok || gv.Cmp(wv) != 0 {
					t.Errorf("system %d query %d: values[%q] = %v, want %v", i, j, k, gv, wv)
				}
			}
		}
	}
}

// TestMultiBatchMatchesSerial is the sharding contract: fan-out across
// engines at any parallelism, cached or cold, returns exactly what a
// serial nested Eval loop produces, in [system][query] order.
func TestMultiBatchMatchesSerial(t *testing.T) {
	items := multiFixture(t)
	want := make([][]Result, len(items))
	for i, item := range items {
		want[i] = make([]Result, len(item.Queries))
		for j, q := range item.Queries {
			res, err := Eval(item.Engine, q)
			if err != nil {
				t.Fatalf("serial Eval system %d query %d: %v", i, j, err)
			}
			want[i][j] = res
		}
	}

	for _, opts := range [][]Option{
		nil,
		{WithParallelism(1)},
		{WithParallelism(2)},
		{WithParallelism(16)},
		{WithCache(false)},
		{WithParallelism(3), WithCache(false)},
	} {
		got, err := MultiBatch(items, opts...)
		if err != nil {
			t.Fatalf("MultiBatch(%v): %v", opts, err)
		}
		requireEqualResults(t, got, want)
	}

	// The n=2 squad in slot 1 degenerates to Example 1: pin its headline.
	got, err := MultiBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if head := got[1][0].Value; !ratutil.Eq(head, ratutil.R(99, 100)) {
		t.Errorf("n=2 headline constraint = %s, want 99/100", head.RatString())
	}
}

// TestMultiBatchErrorIsolation: a failing query occupies exactly its own
// slot; neighbours on both systems still succeed, and the joined error
// names the failing coordinates.
func TestMultiBatchErrorIsolation(t *testing.T) {
	items := multiFixture(t)
	// Sabotage one query on system 0: an agent the system lacks.
	bad := ConstraintQuery{Fact: scenarios.AllFireFact(3), Agent: "nobody", Action: scenarios.ActFire}
	items[0].Queries[2] = bad

	results, err := MultiBatch(items)
	if err == nil {
		t.Fatal("MultiBatch succeeded, want a joined error")
	}
	if !strings.Contains(err.Error(), "system 0 query 2") {
		t.Errorf("joined error %q does not name the failing coordinates", err)
	}
	if results[0][2].Err == nil {
		t.Error("failing slot has nil Err")
	}
	for i := range results {
		for j := range results[i] {
			if i == 0 && j == 2 {
				continue
			}
			if results[i][j].Err != nil {
				t.Errorf("system %d query %d was disturbed: %v", i, j, results[i][j].Err)
			}
		}
	}
}

func TestMultiBatchNilEngine(t *testing.T) {
	items := multiFixture(t)
	items[1].Engine = nil
	results, err := MultiBatch(items)
	if err == nil {
		t.Fatal("MultiBatch with a nil engine succeeded")
	}
	for j := range results[1] {
		if results[1][j].Err == nil {
			t.Errorf("nil-engine system query %d has nil Err", j)
		}
	}
	for j := range results[0] {
		if results[0][j].Err != nil {
			t.Errorf("healthy system query %d was disturbed: %v", j, results[0][j].Err)
		}
	}
}

func TestMultiBatchEmpty(t *testing.T) {
	results, err := MultiBatch(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("MultiBatch(nil) = %v, %v", results, err)
	}
	results, err = MultiBatch([]MultiItem{{Engine: multiFixture(t)[0].Engine}})
	if err != nil {
		t.Fatalf("MultiBatch(no queries): %v", err)
	}
	if len(results) != 1 || len(results[0]) != 0 {
		t.Fatalf("MultiBatch(no queries) shape = %v", results)
	}
}

// TestResultDocRoundsTrip pins the wire form: exact values survive as
// RatStrings, errors flatten to messages, witnesses reduce to counts,
// and the document is valid JSON.
func TestResultDoc(t *testing.T) {
	items := multiFixture(t)
	res, err := Eval(items[1].Engine, items[1].Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	doc := DocOf(res)
	if doc.Value != "99/100" {
		t.Errorf("doc.Value = %q, want 99/100", doc.Value)
	}
	if doc.Kind != KindConstraint {
		t.Errorf("doc.Kind = %q", doc.Kind)
	}
	if res.Witness != nil && doc.WitnessRuns != res.Witness.Count() {
		t.Errorf("doc.WitnessRuns = %d, want %d", doc.WitnessRuns, res.Witness.Count())
	}
	if res.Witness == nil && doc.WitnessRuns != -1 {
		t.Errorf("doc.WitnessRuns = %d, want -1 for no witness", doc.WitnessRuns)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal doc: %v", err)
	}
	var back ResultDoc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal doc: %v", err)
	}
	if back.Value != doc.Value || back.Kind != doc.Kind || back.WitnessRuns != doc.WitnessRuns {
		t.Errorf("doc did not round-trip: %+v vs %+v", back, doc)
	}

	badRes, _ := Eval(items[0].Engine, ConstraintQuery{Fact: scenarios.AllFireFact(3),
		Agent: "nobody", Action: scenarios.ActFire})
	badDoc := DocOf(badRes)
	if badDoc.Error == "" {
		t.Error("error result's doc has empty Error")
	}
	docs := DocsOf([]Result{res, badRes})
	if len(docs) != 2 || docs[0].Value != "99/100" || docs[1].Error == "" {
		t.Errorf("DocsOf order/content wrong: %+v", docs)
	}
}
