package query

import (
	"context"
	"errors"
	"fmt"

	"pak/internal/core"
	"pak/internal/lpengine"
	"pak/internal/montecarlo"
)

// MultiBatch: cross-system fan-out. EvalBatch parallelizes within one
// system; MultiBatch shards several query batches — each bound to its
// own engine — across one bounded worker pool, so a service request
// naming N systems saturates the machine without spawning N × GOMAXPROCS
// goroutines.
//
// The contract (documented in DESIGN.md and pinned by tests):
//
//   - Sharding: the unit of work is one (system, query) pair; a single
//     pool of at most WithParallelism(n) workers (default GOMAXPROCS)
//     drains all pairs, so small batches on one system never serialize
//     behind a large batch on another.
//   - Ordering: the result slab is indexed [system][query] in input
//     order. Parallelism never reorders, renumbers or regroups results,
//     and every result is exactly (Rat.Cmp == 0) what a serial nested
//     Eval loop would produce.
//   - Error isolation: a failing query reports in its own Result.Err
//     slot and never disturbs its neighbours — not in other systems, not
//     in the same batch. The returned error joins the per-query errors,
//     each prefixed with its (system, query) coordinates, and is nil
//     only when every query on every system succeeded.

// Engines bundles the evaluation backends one item resolves to: the
// exact enumeration engine (required), plus the optional prebuilt
// sampling model and LP engine a warm cache can inject. It is what an
// EngineSource yields and what an eager MultiItem's Engine/Model/LP
// fields denote.
type Engines struct {
	// Engine is the evaluation target; nil fails the item's slots with
	// the usual nil-engine error.
	Engine *core.Engine
	// Model optionally carries a prebuilt sampling model (see
	// MultiItem.Model); nil lets the stream build one on demand.
	Model *montecarlo.Model
	// LP optionally carries a prebuilt LP-backend engine (see
	// MultiItem.LP); nil lets the stream build one on demand.
	LP *lpengine.Engine
}

// EngineSource resolves an item's engines on demand — the lazy half of
// the streaming core's contract. The stream calls it at most once per
// item (concurrent workers share one resolution), from whichever worker
// first reaches one of the item's slots, so evaluation of early items
// overlaps the build of later ones instead of waiting behind an
// all-engines barrier. The context is the evaluation context: a source
// should return its cause promptly once it is cancelled, and an error
// that is (or wraps) a context cancellation/deadline while the
// evaluation context has a cause is classified exactly like a slot the
// context cut — not visited by envelope folds, a per-slot deadline
// error elsewhere — whereas any other error is a hard failure carried
// by every slot of the item.
type EngineSource func(ctx context.Context) (Engines, error)

// MultiItem pairs an engine — eager, or lazily resolved through Source
// — with the queries to evaluate against it.
type MultiItem struct {
	// Engine is the evaluation target (its memoization is shared by the
	// item's queries, and by any other MultiItem holding the same engine).
	// When Source is set, Engine (with Model and LP) is ignored: the
	// eager fields are just the trivial source.
	Engine *core.Engine
	// Source, when non-nil, resolves the item's engines on first use.
	// The stream invokes it at most once, after at least one of the
	// item's slots has passed its pre-evaluation context check — so a
	// request that dies before any slot of this item starts never pays
	// for the build.
	Source EngineSource
	// Queries are evaluated in order against Engine.
	Queries []Query
	// Model optionally carries a prebuilt sampling model for the
	// approximate tier (see WithApprox); nil means the stream builds one
	// on demand when the batch contains approximable queries. Exact
	// evaluation ignores it. The service layer injects the model
	// memoized in its EngineCache here, so repeated approx requests
	// against a cached engine never rebuild the sampling tables.
	Model *montecarlo.Model
	// LP optionally carries a prebuilt LP-backend engine (see
	// WithBackend); nil means the stream builds one on demand when the
	// backend routes any of the item's queries to it. The enumeration
	// backend ignores it. The service layer injects the engine memoized
	// in its EngineCache here, so repeated lp-backend requests against a
	// cached system never rebuild the class indexes.
	LP *lpengine.Engine
}

// MultiBatch evaluates every item's query batch against that item's
// engine, fanning all (system, query) pairs out across one bounded
// worker pool. It accepts the same options as EvalBatch:
// WithParallelism bounds the shared pool, WithCache(false) gives every
// query a cold engine over its item's system, and WithContext makes the
// pool cooperatively cancellable — pairs not yet started when the
// context is done fail fast in their own slots, pairs in flight finish
// exactly.
//
// Like EvalBatch, MultiBatch is a consumer of the streaming core
// (EvalMultiStream): frames drain back into the [system][query] slab,
// so batch and stream evaluation share one scheduling substrate and one
// batch-equals-serial contract.
func MultiBatch(items []MultiItem, opts ...Option) ([][]Result, error) {
	results, errs := collectStream(items, newConfig(opts))
	return results, joinMulti(errs)
}

// joinMulti aggregates the per-slot errors, prefixing each with its
// (system, query) coordinates so a joined message stays attributable.
func joinMulti(errs [][]error) error {
	var flat []error
	for i, row := range errs {
		for j, err := range row {
			if err != nil {
				flat = append(flat, fmt.Errorf("system %d query %d: %w", i, j, err))
			}
		}
	}
	return errors.Join(flat...)
}
