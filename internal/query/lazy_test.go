package query_test

// The lazy-engine differential: a MultiItem whose engine arrives
// through a Source must be indistinguishable on the wire from the same
// item with the engine prebuilt — every mode (serial, parallel,
// streamed), every backend (enum, lp), every registry scenario. The
// deadline tests pin the other half of the contract: a deadline
// mid-build cuts unbuilt items without spending their build, the cut is
// ctx-classed (an envelope counts the assignment as not visited), and
// nothing about a cut poisons later evaluations.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"pak/internal/core"
	"pak/internal/query"
	"pak/internal/ratutil"
	"pak/internal/registry"
	"pak/internal/scenarios"
)

// wireGrid renders a MultiBatch result grid to wire JSON per slot.
func wireGrid(t testing.TB, grid [][]query.Result) [][]string {
	t.Helper()
	out := make([][]string, len(grid))
	for i, row := range grid {
		out[i] = make([]string, len(row))
		for j, res := range row {
			out[i][j] = wireJSON(t, res)
		}
	}
	return out
}

// multiStreamWire reassembles an EvalMultiStream into per-slot wire
// JSON, requiring a complete, hole-free stream.
func multiStreamWire(t testing.TB, items []query.MultiItem, opts ...query.Option) [][]string {
	t.Helper()
	out := make([][]string, len(items))
	for i := range items {
		out[i] = make([]string, len(items[i].Queries))
	}
	for f := range query.EvalMultiStream(items, opts...) {
		if f.Terminal() {
			if f.Status != query.StreamComplete {
				t.Fatalf("terminal status %q, want complete", f.Status)
			}
			continue
		}
		if out[f.System][f.Index] != "" {
			t.Fatalf("duplicate frame for slot (%d,%d)", f.System, f.Index)
		}
		out[f.System][f.Index] = wireJSON(t, f.Result)
	}
	for i, row := range out {
		for j, doc := range row {
			if doc == "" {
				t.Fatalf("slot (%d,%d) never emitted", i, j)
			}
		}
	}
	return out
}

// lazyTwin mirrors eager items as Source-backed ones, each source
// building a fresh engine for the same system and counting invocations.
func lazyTwin(eager []query.MultiItem) ([]query.MultiItem, []*atomic.Int64) {
	lazy := make([]query.MultiItem, len(eager))
	counts := make([]*atomic.Int64, len(eager))
	for i, it := range eager {
		sys := it.Engine.System()
		n := &atomic.Int64{}
		counts[i] = n
		lazy[i] = query.MultiItem{
			Queries: it.Queries,
			Source: func(context.Context) (query.Engines, error) {
				n.Add(1)
				return query.Engines{Engine: core.New(sys)}, nil
			},
		}
	}
	return lazy, counts
}

// TestLazyMatchesEagerEverywhere is the differential gate of the lazy
// contract: for every registry scenario's differential instances,
// {serial, parallel, streamed} × {enum, lp} over a two-item batch, the
// Source-backed evaluation returns byte-identical ResultDoc JSON to the
// prebuilt-engine evaluation, and every source resolves exactly once.
func TestLazyMatchesEagerEverywhere(t *testing.T) {
	reg := registry.Default()
	for _, s := range reg.Scenarios() {
		for _, spec := range s.Differential {
			spec := spec
			t.Run(spec, func(t *testing.T) {
				sys, err := reg.Build(spec)
				if err != nil {
					t.Fatalf("build %q: %v", spec, err)
				}
				qs := supportedBatch(t, sys)
				eager := []query.MultiItem{
					{Engine: core.New(sys), Queries: qs},
					{Engine: core.New(sys), Queries: qs[:3]},
				}

				for _, backend := range []query.Backend{query.BackendEnum, query.BackendLP} {
					for _, par := range []int{1, 4} {
						mode := fmt.Sprintf("backend=%s/par=%d", backend, par)
						opts := []query.Option{query.WithParallelism(par), query.WithBackend(backend)}
						want, _ := query.MultiBatch(eager, opts...)
						lazy, counts := lazyTwin(eager)
						got, _ := query.MultiBatch(lazy, opts...)
						compareGrids(t, mode, wireGrid(t, got), wireGrid(t, want))
						for i, n := range counts {
							if n.Load() != 1 {
								t.Errorf("%s: item %d source resolved %d times, want exactly once", mode, i, n.Load())
							}
						}
					}
					mode := fmt.Sprintf("backend=%s/streamed", backend)
					opts := []query.Option{query.WithParallelism(4), query.WithBackend(backend)}
					want := multiStreamWire(t, eager, opts...)
					lazy, counts := lazyTwin(eager)
					got := multiStreamWire(t, lazy, opts...)
					compareGrids(t, mode, got, want)
					for i, n := range counts {
						if n.Load() != 1 {
							t.Errorf("%s: item %d source resolved %d times, want exactly once", mode, i, n.Load())
						}
					}
				}
			})
		}
	}
}

func compareGrids(t testing.TB, mode string, got, want [][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d systems, want %d", mode, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: system %d has %d slots, want %d", mode, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("%s slot (%d,%d) differs:\nlazy:  %s\neager: %s", mode, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestDeadlineMidBuildCutsUnbuilt: a deadline arriving while one item's
// source is still building cuts that item's slots with the context's
// cause — already-finished slots keep their exact answers — and nothing
// about the cut is sticky: the same source evaluated under a live
// context afterwards answers exactly.
func TestDeadlineMidBuildCutsUnbuilt(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	qs := supportedBatch(t, sys)[:2]
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)

	var builds atomic.Int64
	blocking := func(c context.Context) (query.Engines, error) {
		builds.Add(1)
		<-c.Done() // the build outlives the request: block until the cut
		return query.Engines{}, context.Cause(c)
	}
	items := []query.MultiItem{
		{Engine: core.New(sys), Queries: qs},
		{Source: blocking, Queries: qs},
	}

	// Parallelism 1 orders the slots: item 0 completes, then the worker
	// enters item 1's source, where we cancel it.
	exact := 0
	var cutErrs []error
	status := query.StreamStatus("")
	for f := range query.EvalMultiStream(items, query.WithContext(ctx), query.WithParallelism(1)) {
		if f.Terminal() {
			status = f.Status
			continue
		}
		switch f.System {
		case 0:
			if f.Result.Err != nil {
				t.Errorf("finished slot (0,%d) failed: %v", f.Index, f.Result.Err)
			}
			exact++
			if exact == len(qs) {
				cancel(context.DeadlineExceeded)
			}
		case 1:
			cutErrs = append(cutErrs, f.Result.Err)
		}
	}
	if exact != len(qs) {
		t.Fatalf("item 0 finished %d slots, want %d", exact, len(qs))
	}
	if status != query.StreamDeadline {
		t.Errorf("terminal status %q, want %q", status, query.StreamDeadline)
	}
	if len(cutErrs) != len(qs) {
		t.Fatalf("item 1 emitted %d slots, want %d", len(cutErrs), len(qs))
	}
	for i, err := range cutErrs {
		if !core.IsContextErr(err) {
			t.Errorf("cut slot %d error %v is not ctx-classed; envelope folds would hard-fail it", i, err)
		}
	}
	if builds.Load() != 1 {
		t.Errorf("blocking source resolved %d times, want once", builds.Load())
	}

	// The cut is not sticky: a live re-evaluation of an identical lazy
	// item answers byte-identically to the eager baseline.
	retry := []query.MultiItem{{
		Source: func(context.Context) (query.Engines, error) {
			return query.Engines{Engine: core.New(sys)}, nil
		},
		Queries: qs,
	}}
	got, _ := query.MultiBatch(retry, query.WithParallelism(1))
	want, _ := query.MultiBatch([]query.MultiItem{{Engine: core.New(sys), Queries: qs}}, query.WithParallelism(1))
	compareGrids(t, "retry", wireGrid(t, got), wireGrid(t, want))
}

// TestDeadlineMidBuildEnvelopeNotVisited: an envelope assignment whose
// source the deadline cuts counts as not visited — the partial
// envelope's accounting shows exactly the finished assignments.
func TestDeadlineMidBuildEnvelopeNotVisited(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	inner := query.ConstraintQuery{Fact: scenarios.AllFireFact(2), Agent: scenarios.General, Action: scenarios.ActFire}
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)

	q := query.EnvelopeQuery{Inner: inner, Items: []query.EnvelopeItem{
		{Assignment: "a=0", Spec: "s0", Engine: core.New(sys)},
		{Assignment: "a=1", Spec: "s1", Source: func(c context.Context) (query.Engines, error) {
			<-c.Done()
			return query.Engines{}, context.Cause(c)
		}},
	}}
	frames, err := query.EnvelopeStream(q, query.WithContext(ctx), query.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for f := range frames {
		if f.Terminal() {
			if f.Status != query.StreamDeadline {
				t.Errorf("terminal status %q, want %q", f.Status, query.StreamDeadline)
			}
			env := f.Envelope
			if env.Visited != 1 || env.Total != 2 {
				t.Errorf("envelope accounting = %d/%d visited, want 1/2 (the cut build must count as not visited)", env.Visited, env.Total)
			}
			if !env.Defined() {
				t.Error("the finished assignment's value should define the partial envelope")
			}
			continue
		}
		if f.Index == 0 {
			cancel(context.DeadlineExceeded)
		}
	}
}
