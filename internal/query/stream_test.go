package query

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"pak/internal/core"
	"pak/internal/ratutil"
)

// docJSON renders a Result's wire form for byte-level comparison: if
// two results agree here, a service client cannot tell them apart.
func docJSON(t *testing.T, res Result) string {
	t.Helper()
	data, err := json.Marshal(DocOf(res))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// drain reads a stream to completion, separating result frames from the
// terminal frame and asserting the core framing contract: exactly one
// terminal frame, in final position.
func drain(t *testing.T, ch <-chan Frame) ([]Frame, Frame) {
	t.Helper()
	var results []Frame
	var terminal Frame
	seenTerminal := false
	for f := range ch {
		if seenTerminal {
			t.Fatalf("frame after the terminal frame: %+v", f)
		}
		if f.Terminal() {
			terminal, seenTerminal = f, true
			continue
		}
		results = append(results, f)
	}
	if !seenTerminal {
		t.Fatal("stream closed without a terminal frame")
	}
	return results, terminal
}

// TestEvalStreamMatchesBatch: every frame a stream emits is
// byte-identical (in wire form) to its batch-mode counterpart, the
// emitted indices are exactly the batch's index set — no duplicates, no
// holes — and the terminal frame reports completion.
func TestEvalStreamMatchesBatch(t *testing.T) {
	e, qs := squadWorkload(t, 3)
	batch, err := EvalBatch(core.New(e.System()), qs, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}

	frames, terminal := drain(t, EvalStream(e, qs, WithParallelism(4)))
	if len(frames) != len(qs) {
		t.Fatalf("got %d result frames, want %d", len(frames), len(qs))
	}
	seen := make(map[int]bool)
	for _, f := range frames {
		if f.System != 0 {
			t.Errorf("EvalStream frame carries system %d, want 0", f.System)
		}
		if seen[f.Index] {
			t.Errorf("index %d emitted twice", f.Index)
		}
		seen[f.Index] = true
		if got, want := docJSON(t, f.Result), docJSON(t, batch[f.Index]); got != want {
			t.Errorf("frame %d differs from batch mode:\nstream: %s\nbatch:  %s", f.Index, got, want)
		}
	}
	for i := range qs {
		if !seen[i] {
			t.Errorf("index %d never emitted", i)
		}
	}
	if terminal.Status != StreamComplete || terminal.Err != nil {
		t.Errorf("terminal = %+v, want StreamComplete with nil Err", terminal)
	}
}

// TestEvalStreamSerialOrder: parallelism ≤ 1 evaluates serially, so
// frames arrive in input order — the property pakcheck -stream's
// deterministic rendering rests on.
func TestEvalStreamSerialOrder(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	frames, _ := drain(t, EvalStream(e, qs, WithParallelism(1)))
	for i, f := range frames {
		if f.Index != i {
			t.Fatalf("serial frame %d has index %d", i, f.Index)
		}
	}
}

// TestEvalMultiStreamMatchesMultiBatch: the multi-system stream carries
// correct (system, index) coordinates, covers every slot exactly once,
// and each frame equals its MultiBatch counterpart byte for byte.
func TestEvalMultiStreamMatchesMultiBatch(t *testing.T) {
	e2, qs2 := squadWorkload(t, 2)
	e3, qs3 := squadWorkload(t, 3)
	items := []MultiItem{
		{Engine: core.New(e2.System()), Queries: qs2},
		{Engine: core.New(e3.System()), Queries: qs3},
	}
	batch, err := MultiBatch(items, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}

	frames, terminal := drain(t, EvalMultiStream([]MultiItem{
		{Engine: e2, Queries: qs2},
		{Engine: e3, Queries: qs3},
	}, WithParallelism(4)))
	if want := len(qs2) + len(qs3); len(frames) != want {
		t.Fatalf("got %d frames, want %d", len(frames), want)
	}
	seen := make(map[[2]int]bool)
	for _, f := range frames {
		key := [2]int{f.System, f.Index}
		if seen[key] {
			t.Errorf("slot %v emitted twice", key)
		}
		seen[key] = true
		if got, want := docJSON(t, f.Result), docJSON(t, batch[f.System][f.Index]); got != want {
			t.Errorf("slot %v differs from batch mode:\nstream: %s\nbatch:  %s", key, got, want)
		}
	}
	for i, row := range batch {
		for j := range row {
			if !seen[[2]int{i, j}] {
				t.Errorf("slot [%d][%d] never emitted", i, j)
			}
		}
	}
	if terminal.Status != StreamComplete {
		t.Errorf("terminal status = %q, want complete", terminal.Status)
	}
}

// gateQuery is a test-only query whose evaluation blocks until released,
// making mid-batch cancellation deterministic: the test knows exactly
// which queries finished before the context died.
type gateQuery struct {
	entered chan struct{} // closed when eval starts
	release chan struct{} // eval returns once this closes
}

func (g gateQuery) Kind() Kind      { return Kind("gate") }
func (g gateQuery) String() string  { return "gate" }
func (g gateQuery) validate() error { return nil }
func (g gateQuery) eval(context.Context, *core.Engine) (Result, error) {
	if g.entered != nil {
		close(g.entered)
	}
	if g.release != nil {
		<-g.release
	}
	return Result{Kind: "gate", Query: "gate", Value: ratutil.R(1, 1), Detail: "released"}, nil
}

// TestEvalStreamDeadlineDrainsInFlight is the tentpole's core property,
// made deterministic with a gate query: the context dies while query 1
// is mid-evaluation; queries 0 and 1 still emit their exact frames (the
// finished prefix is never lost, in-flight work is drained, not torn),
// queries 2 and 3 emit deadline-error frames, and the terminal frame
// reports StreamDeadline with the cause.
func TestEvalStreamDeadlineDrainsInFlight(t *testing.T) {
	e, real := squadWorkload(t, 2)
	gate := gateQuery{entered: make(chan struct{}), release: make(chan struct{})}
	qs := []Query{real[0], gate, real[1], real[2]}

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	go func() {
		<-gate.entered
		cancel(context.DeadlineExceeded)
		close(gate.release)
	}()

	frames, terminal := drain(t, EvalStream(e, qs, WithParallelism(1), WithContext(ctx)))
	if len(frames) != len(qs) {
		t.Fatalf("got %d frames, want %d (every slot must emit exactly one)", len(frames), len(qs))
	}
	byIndex := make(map[int]Frame, len(frames))
	for _, f := range frames {
		byIndex[f.Index] = f
	}

	// The finished prefix: exact, byte-identical to an untimed run.
	untimed, err := EvalBatch(core.New(e.System()), []Query{real[0]}, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := docJSON(t, byIndex[0].Result), docJSON(t, untimed[0]); got != want {
		t.Errorf("finished slot 0 not byte-identical to its untimed value:\ngot:  %s\nwant: %s", got, want)
	}
	if byIndex[1].Result.Err != nil || byIndex[1].Result.Detail != "released" {
		t.Errorf("in-flight slot 1 was not drained to completion: %+v", byIndex[1].Result)
	}

	// The unstarted suffix: per-slot deadline errors, labels intact.
	for _, i := range []int{2, 3} {
		res := byIndex[i].Result
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Errorf("slot %d: error %v does not wrap context.DeadlineExceeded", i, res.Err)
		}
		if res.Query == "" {
			t.Errorf("slot %d lost its query label", i)
		}
	}

	if terminal.Status != StreamDeadline {
		t.Errorf("terminal status = %q, want %q", terminal.Status, StreamDeadline)
	}
	if !errors.Is(terminal.Err, context.DeadlineExceeded) {
		t.Errorf("terminal cause = %v, want context.DeadlineExceeded", terminal.Err)
	}
}

// TestEvalStreamCancelled: plain cancellation (a client going away)
// closes with StreamCancelled, not StreamDeadline.
func TestEvalStreamCancelled(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	frames, terminal := drain(t, EvalStream(e, qs, WithContext(ctx)))
	if len(frames) != len(qs) {
		t.Fatalf("got %d frames, want %d", len(frames), len(qs))
	}
	for _, f := range frames {
		if !errors.Is(f.Result.Err, context.Canceled) {
			t.Errorf("slot %d: error %v does not wrap context.Canceled", f.Index, f.Result.Err)
		}
	}
	if terminal.Status != StreamCancelled || !errors.Is(terminal.Err, context.Canceled) {
		t.Errorf("terminal = %+v, want StreamCancelled wrapping context.Canceled", terminal)
	}
}

// TestEvalStreamAbandonedConsumerDoesNotLeak: a consumer that walks away
// after one frame must not wedge the workers — the stream is buffered
// for the whole batch, so the producer finishes unconditionally. The
// test passes by not deadlocking (and, under -race, by the detector
// seeing the abandoned goroutine exit cleanly via the final channel
// close being reachable).
func TestEvalStreamAbandonedConsumerDoesNotLeak(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	ch := EvalStream(e, qs, WithParallelism(2))
	<-ch // read one frame, then abandon the stream

	// A second full evaluation on the same engine still works: no worker
	// is stuck on the abandoned channel.
	if _, err := EvalBatch(e, qs); err != nil {
		t.Fatal(err)
	}
}

// TestParallelismContract pins the documented "n ≤ 1 means serial"
// normalization for n ∈ {-1, 0, 1, len+1} on both the batch and stream
// paths: every parallelism value yields results identical to the serial
// reference, and n ≤ 1 additionally yields input-ordered frames.
func TestParallelismContract(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	reference, err := EvalBatch(core.New(e.System()), qs, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	refDocs := make([]string, len(reference))
	for i, res := range reference {
		refDocs[i] = docJSON(t, res)
	}

	for _, n := range []int{-1, 0, 1, len(qs) + 1} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			batch, err := EvalBatch(e, qs, WithParallelism(n))
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range batch {
				if got := docJSON(t, res); got != refDocs[i] {
					t.Errorf("batch slot %d at n=%d: %s, want %s", i, n, got, refDocs[i])
				}
			}

			frames, terminal := drain(t, EvalStream(e, qs, WithParallelism(n)))
			if len(frames) != len(qs) {
				t.Fatalf("stream at n=%d emitted %d frames, want %d", n, len(frames), len(qs))
			}
			for pos, f := range frames {
				if n <= 1 && f.Index != pos {
					t.Errorf("serial stream at n=%d emitted index %d at position %d", n, f.Index, pos)
				}
				if got := docJSON(t, f.Result); got != refDocs[f.Index] {
					t.Errorf("stream slot %d at n=%d: %s, want %s", f.Index, n, got, refDocs[f.Index])
				}
			}
			if terminal.Status != StreamComplete {
				t.Errorf("terminal status at n=%d = %q", n, terminal.Status)
			}
		})
	}
}

// TestEvalBatchNilQuery: a nil query in a batch fails its own slot and
// the joined error — on both the batch and stream paths (the stream
// carries errors inside frames, so Eval's error-return-only nil path
// must land in Result.Err too).
func TestEvalBatchNilQuery(t *testing.T) {
	e, qs := squadWorkload(t, 2)
	batch := []Query{qs[0], nil, qs[1]}
	results, err := EvalBatch(e, batch, WithParallelism(1))
	if err == nil {
		t.Fatal("batch with a nil query returned a nil joined error")
	}
	if results[1].Err == nil {
		t.Error("nil query's slot carries no error")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("nil query disturbed its neighbours")
	}

	frames, terminal := drain(t, EvalStream(e, batch, WithParallelism(1)))
	if frames[1].Result.Err == nil {
		t.Error("nil query's frame carries no error")
	}
	if terminal.Status != StreamComplete {
		t.Errorf("terminal status = %q, want complete (a nil query is a slot failure, not a stream failure)", terminal.Status)
	}
}

// TestEvalStreamEmptyBatch: zero queries still close with a terminal
// complete frame — the degenerate stream is one frame long.
func TestEvalStreamEmptyBatch(t *testing.T) {
	e, _ := squadWorkload(t, 2)
	frames, terminal := drain(t, EvalStream(e, nil))
	if len(frames) != 0 {
		t.Fatalf("empty batch emitted %d result frames", len(frames))
	}
	if terminal.Status != StreamComplete {
		t.Errorf("terminal status = %q, want complete", terminal.Status)
	}
}
