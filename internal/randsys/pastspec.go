package randsys

import (
	"math/rand"

	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// StructuredPastFact returns a random past-based fact with a structural
// spec, drawn from the serializable grammar: localIs / localContains /
// timeIs leaves over the system's actual agents and local states,
// composed under not / and / or / once / soFar, with occasional
// believes / knows wrappers (epistemic facts are past-based regardless
// of their inner fact, which may even mention the future).
//
// Unlike PastFact — whose node labelling is past-based by construction
// but opaque (logic.Atom, no spec) — these facts pass the query layer's
// CanSolveLP gate, so they drive the two-backend differential fuzz
// harness through the LP routing path end to end.
func StructuredPastFact(sys *pps.System, seed int64) logic.Fact {
	rng := rand.New(rand.NewSource(seed))
	return structuredPast(sys, rng, 2)
}

// randLocal picks an agent and one of its local states; the bogus
// fallback only triggers on systems with an agent that has no recorded
// local states, which Generate never produces.
func randLocal(sys *pps.System, rng *rand.Rand) (string, string) {
	agents := sys.Agents()
	name := agents[rng.Intn(len(agents))]
	id, ok := sys.AgentIndex(name)
	if !ok {
		return name, "?"
	}
	locals := sys.LocalStates(id)
	if len(locals) == 0 {
		return name, "?"
	}
	return name, locals[rng.Intn(len(locals))]
}

func structuredPast(sys *pps.System, rng *rand.Rand, depth int) logic.Fact {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return logic.True()
		case 1:
			return logic.False()
		case 2:
			agent, local := randLocal(sys, rng)
			return logic.LocalIs(agent, local)
		case 3:
			agent, local := randLocal(sys, rng)
			// A substring of a real local state, so the fact is sometimes
			// true without being localIs in disguise.
			if len(local) > 1 {
				local = local[:1+rng.Intn(len(local)-1)]
			}
			return logic.LocalContains(agent, local)
		default:
			return logic.TimeIs(rng.Intn(sys.MaxTime() + 1))
		}
	}
	switch rng.Intn(6) {
	case 0:
		return logic.Not(structuredPast(sys, rng, depth-1))
	case 1:
		return logic.And(structuredPast(sys, rng, depth-1), structuredPast(sys, rng, depth-1))
	case 2:
		return logic.Or(structuredPast(sys, rng, depth-1), structuredPast(sys, rng, depth-1))
	case 3:
		return logic.Once(structuredPast(sys, rng, depth-1))
	case 4:
		return logic.SoFar(structuredPast(sys, rng, depth-1))
	default:
		agent, _ := randLocal(sys, rng)
		p := ratutil.R(int64(rng.Intn(5)), 4)
		inner := structuredPast(sys, rng, depth-1)
		if rng.Intn(3) == 0 {
			// Epistemic facts stay past-based over ANY inner fact; mix in a
			// future-reading one so the gate's believes/knows whitelisting
			// is exercised, not just assumed.
			inner = logic.Does(sys.Agents()[0], DesignatedAction)
		}
		if rng.Intn(2) == 0 {
			return epistemic.Knows(agent, inner)
		}
		return epistemic.Believes(agent, p, inner)
	}
}
