package randsys

import (
	"errors"
	"testing"
	"testing/quick"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(c Config) Config
	}{
		{"no agents", func(c Config) Config { c.Agents = 0; return c }},
		{"zero depth", func(c Config) Config { c.Depth = 0; return c }},
		{"zero branch", func(c Config) Config { c.MaxBranch = 0; return c }},
		{"zero initial", func(c Config) Config { c.MaxInitial = 0; return c }},
		{"zero alphabet", func(c Config) Config { c.ObsAlphabet = 0; return c }},
		{"negative action time", func(c Config) Config { c.ActionTime = -1; return c }},
		{"action time at depth", func(c Config) Config { c.ActionTime = c.Depth; return c }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.mutate(Default(1))); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		sys, err := Generate(Default(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ratutil.IsOne(sys.TotalMeasure()) {
			t.Fatalf("seed %d: total measure %v", seed, sys.TotalMeasure())
		}
		e := core.New(sys)
		if err := e.IsProper("a0", DesignatedAction); err != nil {
			t.Fatalf("seed %d: designated action not proper: %v", seed, err)
		}
	}
}

func TestGenerateDeterministicGivenSeed(t *testing.T) {
	a, err := Generate(Default(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRuns() != b.NumRuns() || a.NumNodes() != b.NumNodes() {
		t.Fatal("same seed produced structurally different systems")
	}
	for r := 0; r < a.NumRuns(); r++ {
		if !ratutil.Eq(a.RunProb(pps.RunID(r)), b.RunProb(pps.RunID(r))) {
			t.Fatal("same seed produced different run probabilities")
		}
	}
}

func TestDetActionIsDeterministic(t *testing.T) {
	cfg := Default(3)
	cfg.DetAction = true
	sys, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	det, err := e.IsDeterministicAction("a0", DesignatedAction)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Fatal("DetAction mode should yield a deterministic action")
	}
}

func TestPastFactIsPastBased(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 1000))
		if err != nil {
			return false
		}
		return logic.IsPastBased(sys, PastFact(sys, factSeed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFactIsRunBased(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 1000))
		if err != nil {
			return false
		}
		return logic.IsRunBased(sys, RunFact(sys, factSeed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLemma43PastBased is the property-test form of Lemma 4.3(b):
// past-based facts are local-state independent of every proper action.
func TestQuickLemma43PastBased(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		e := core.New(sys)
		rep, err := e.LocalStateIndependence(PastFact(sys, factSeed), "a0", DesignatedAction)
		if err != nil {
			return false
		}
		return rep.Independent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLemma43Deterministic is the property-test form of Lemma 4.3(a):
// every fact (even a non-past-based run fact) is local-state independent
// of a deterministic proper action.
func TestQuickLemma43Deterministic(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		cfg := Default(sysSeed % 10_000)
		cfg.DetAction = true
		sys, err := Generate(cfg)
		if err != nil {
			return false
		}
		e := core.New(sys)
		rep, err := e.LocalStateIndependence(RunFact(sys, factSeed), "a0", DesignatedAction)
		if err != nil {
			return false
		}
		return rep.Independent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTheorem62 is the property-test form of the paper's main
// theorem: whenever local-state independence holds, µ(φ@α|α) equals the
// expected belief exactly, over random systems, both mixed and
// deterministic, with past-based and run-based facts.
func TestQuickTheorem62(t *testing.T) {
	f := func(sysSeed, factSeed int64, det, runFact bool) bool {
		cfg := Default(sysSeed % 10_000)
		cfg.DetAction = det
		sys, err := Generate(cfg)
		if err != nil {
			return false
		}
		var fact logic.Fact
		if runFact {
			fact = RunFact(sys, factSeed)
		} else {
			fact = PastFact(sys, factSeed)
		}
		e := core.New(sys)
		rep, err := e.CheckExpectation(fact, "a0", DesignatedAction)
		if err != nil {
			return false
		}
		// Holds() is vacuous when independence fails (possible for a run
		// fact with a mixed action); otherwise it asserts exact equality.
		return rep.Holds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLemma51 checks Lemma 5.1 over random systems: with p set to the
// exact constraint probability, some performance point has belief ≥ p.
func TestQuickLemma51(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		e := core.New(sys)
		fact := PastFact(sys, factSeed)
		mu, err := e.ConstraintProb(fact, "a0", DesignatedAction)
		if err != nil {
			return false
		}
		rep, err := e.CheckNecessity(fact, "a0", DesignatedAction, mu)
		if err != nil {
			return false
		}
		return rep.Holds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorollary72 checks the PAK corollary over random systems for a
// grid of ε values.
func TestQuickCorollary72(t *testing.T) {
	epsGrid := []string{"1/10", "1/4", "1/2", "9/10"}
	f := func(sysSeed, factSeed int64, epsIdx uint8) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		e := core.New(sys)
		fact := PastFact(sys, factSeed)
		eps := ratutil.MustParse(epsGrid[int(epsIdx)%len(epsGrid)])
		rep, err := e.CheckPAKSquare(fact, "a0", DesignatedAction, eps)
		if err != nil {
			return false
		}
		return rep.Holds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSufficiency checks Theorem 4.2 over random systems with the
// threshold set to the minimum acting belief.
func TestQuickSufficiency(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		e := core.New(sys)
		fact := PastFact(sys, factSeed)
		min, _, err := e.BeliefRangeAtAction(fact, "a0", DesignatedAction)
		if err != nil {
			return false
		}
		rep, err := e.CheckSufficiency(fact, "a0", DesignatedAction, min)
		if err != nil {
			return false
		}
		return rep.Holds() && rep.PremiseMet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
