package randsys

import (
	"testing"
	"testing/quick"

	"pak/internal/core"
	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Property tests for the extended analysis machinery, over random
// protocol-generated systems.

// TestQuickJeffreyDecomposition: on every random system, the Jeffrey
// decomposition's weights sum to 1 and its aggregates equal the direct
// engine queries; under independence Lemma B.1 holds cell-wise.
func TestQuickJeffreyDecomposition(t *testing.T) {
	f := func(sysSeed, factSeed int64, det bool) bool {
		cfg := Default(sysSeed % 10_000)
		cfg.DetAction = det
		sys, err := Generate(cfg)
		if err != nil {
			return false
		}
		fact := PastFact(sys, factSeed)
		e := core.New(sys)
		d, err := e.Decompose(fact, "a0", DesignatedAction)
		if err != nil {
			return false
		}
		if !d.WeightsSumToOne() {
			return false
		}
		mu, err := e.ConstraintProb(fact, "a0", DesignatedAction)
		if err != nil {
			return false
		}
		exp, err := e.ExpectedBelief(fact, "a0", DesignatedAction)
		if err != nil {
			return false
		}
		if !ratutil.Eq(d.ConstraintProb, mu) || !ratutil.Eq(d.ExpectedBelief, exp) {
			return false
		}
		// Past-based fact ⇒ independent ⇒ Lemma B.1 cell-wise.
		return d.LemmaB1Holds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMartingale: for run-based facts on uniform-depth random
// systems, the expected posterior E[β at t] is constant over time (the
// Bayesian martingale property) and equals the prior µ(φ).
func TestQuickMartingale(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		cfg := Default(sysSeed % 10_000)
		sys, err := Generate(cfg)
		if err != nil {
			return false
		}
		fact := RunFact(sys, factSeed)
		prior := sys.Measure(logic.RunsSatisfying(sys, fact))
		e := core.New(sys)
		for agent := 0; agent < cfg.Agents; agent++ {
			name := sys.AgentName(pps.AgentID(agent))
			for tt := 0; tt <= cfg.Depth; tt++ {
				got, err := e.ExpectedBeliefAtTime(fact, name, tt)
				if err != nil {
					return false
				}
				if !ratutil.Eq(got, prior) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEpistemicFactsPastBased: B_i^p(φ) and K_i(φ) are past-based on
// every system, for any argument fact (their value is a function of the
// local state, which is part of the node).
func TestQuickEpistemicFactsPastBased(t *testing.T) {
	levels := []string{"1/4", "1/2", "3/4", "1"}
	f := func(sysSeed, factSeed int64, levelIdx uint8, useRunFact bool) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		var arg logic.Fact
		if useRunFact {
			arg = RunFact(sys, factSeed)
		} else {
			arg = PastFact(sys, factSeed)
		}
		p := ratutil.MustParse(levels[int(levelIdx)%len(levels)])
		bel := epistemic.Believes("a0", p, arg)
		kn := epistemic.Knows("a1", arg)
		return logic.IsPastBased(sys, bel) && logic.IsPastBased(sys, kn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEpistemicConstraints: epistemic conditions participate in
// Theorem 6.2 like any other past-based fact.
func TestQuickEpistemicConstraints(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		cond := epistemic.Believes("a1", ratutil.R(1, 2), RunFact(sys, factSeed))
		e := core.New(sys)
		rep, err := e.CheckExpectation(cond, "a0", DesignatedAction)
		if err != nil {
			return false
		}
		return rep.Independent && rep.Equal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKnowledgeImpliesBelief: K_i(φ) ⊆ B_i^p(φ) for every level p
// (knowledge is the strongest belief).
func TestQuickKnowledgeImpliesBelief(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		arg := PastFact(sys, factSeed)
		kn := epistemic.Knows("a0", arg)
		bel := epistemic.Believes("a0", ratutil.R(99, 100), arg)
		for r := 0; r < sys.NumRuns(); r++ {
			for tt := 0; tt < sys.RunLen(pps.RunID(r)); tt++ {
				if kn.Holds(sys, pps.RunID(r), tt) && !bel.Holds(sys, pps.RunID(r), tt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMeasureFloatTracksExact: the float fast path stays within
// rounding distance of the exact measure on random events.
func TestQuickMeasureFloatTracksExact(t *testing.T) {
	f := func(sysSeed, factSeed int64) bool {
		sys, err := Generate(Default(sysSeed % 10_000))
		if err != nil {
			return false
		}
		ev := logic.RunsSatisfying(sys, RunFact(sys, factSeed))
		exact := ratutil.Float(sys.Measure(ev))
		got := sys.MeasureFloat(ev)
		diff := exact - got
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
