// Package randsys generates random purely probabilistic systems, together
// with random facts and a designated proper action, for property-based
// testing and benchmark workloads.
//
// The paper's theorems are universal statements over all pps satisfying
// their hypotheses; the executable analogue is to check them mechanically
// over large seeded families of random systems. The generator therefore
// guarantees, by construction, the structural hypotheses the theorems
// need:
//
//   - trees have uniform depth and the designated action is performed by
//     agent 0 only at a fixed time, so it is performed at most once per run
//     (and the generator forces at least one performance), making it a
//     proper action;
//   - agent 0's step at the action time is a genuine *protocol*: the
//     probability q(ℓ) of performing α is a function of the local state ℓ
//     alone, as in the paper's Section 2.2 (an arbitrary per-edge action
//     assignment would violate the hypothesis under which Lemma 4.3(b) is
//     proved). DetAction mode makes q(ℓ) ∈ {0,1}, a deterministic action
//     (Lemma 4.3(a)); otherwise q(ℓ) is a random mixing probability;
//   - PastFact labels tree nodes, producing past-based facts
//     (Lemma 4.3(b)); RunFact labels leaves, producing run-based facts
//     that are generally NOT past-based.
//
// Local-state observability is deliberately coarse (a small observation
// alphabet) so that distinct branches collide on local states and beliefs
// are nontrivial.
package randsys

import (
	"errors"
	"fmt"
	"math/rand"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// DesignatedAction is the proper action α performed by agent 0 in
// generated systems.
const DesignatedAction = "alpha*"

// OtherAction is the alternative action used when α is not performed.
const OtherAction = "beta"

// ErrBadConfig indicates an invalid generator configuration.
var ErrBadConfig = errors.New("randsys: invalid configuration")

// Config parameterizes system generation. The zero value is invalid; use
// Default and adjust.
type Config struct {
	// Agents is the number of agents (≥ 1). Agent 0 performs the
	// designated action.
	Agents int
	// Depth is the uniform run length in transitions (≥ 1): every run has
	// points 0..Depth.
	Depth int
	// MaxBranch is the maximum number of children of an internal node (≥ 1).
	MaxBranch int
	// MaxInitial is the maximum number of initial states (≥ 1).
	MaxInitial int
	// ObsAlphabet is the size of the per-agent observation alphabet; small
	// values produce more local-state collisions and richer beliefs (≥ 1).
	ObsAlphabet int
	// ActionTime is the time at which agent 0 may perform the designated
	// action (0 ≤ ActionTime < Depth).
	ActionTime int
	// DetAction, when true, decides the designated action as a function of
	// agent 0's local state (a deterministic action per Lemma 4.3(a));
	// otherwise the choice is made independently per edge (mixed).
	DetAction bool
	// Seed drives all randomness.
	Seed int64
}

// Default returns a moderate configuration suitable for property tests.
func Default(seed int64) Config {
	return Config{
		Agents:      2,
		Depth:       4,
		MaxBranch:   3,
		MaxInitial:  2,
		ObsAlphabet: 2,
		ActionTime:  2,
		Seed:        seed,
	}
}

func (c Config) validate() error {
	switch {
	case c.Agents < 1:
		return fmt.Errorf("%w: Agents=%d", ErrBadConfig, c.Agents)
	case c.Depth < 1:
		return fmt.Errorf("%w: Depth=%d", ErrBadConfig, c.Depth)
	case c.MaxBranch < 1:
		return fmt.Errorf("%w: MaxBranch=%d", ErrBadConfig, c.MaxBranch)
	case c.MaxInitial < 1:
		return fmt.Errorf("%w: MaxInitial=%d", ErrBadConfig, c.MaxInitial)
	case c.ObsAlphabet < 1:
		return fmt.Errorf("%w: ObsAlphabet=%d", ErrBadConfig, c.ObsAlphabet)
	case c.ActionTime < 0 || c.ActionTime >= c.Depth:
		return fmt.Errorf("%w: ActionTime=%d with Depth=%d", ErrBadConfig, c.ActionTime, c.Depth)
	}
	return nil
}

// randProbs returns n positive rationals summing to exactly 1.
func randProbs(rng *rand.Rand, n int) []*ratValue {
	weights := make([]int64, n)
	var total int64
	for i := range weights {
		weights[i] = int64(rng.Intn(9) + 1)
		total += weights[i]
	}
	out := make([]*ratValue, n)
	for i, w := range weights {
		out[i] = &ratValue{num: w, den: total}
	}
	return out
}

// ratValue avoids importing big in the hot path; converted on use.
type ratValue struct{ num, den int64 }

// Generate builds a random system according to cfg. The designated action
// is guaranteed to be proper for agent 0: in DetAction mode a draw may
// happen to never perform the action, in which case Generate retries with
// derived seeds (bounded; failure is reported as an error).
func Generate(cfg Config) (*pps.System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const maxAttempts = 64
	seed := cfg.Seed
	for attempt := 0; attempt < maxAttempts; attempt++ {
		sys, err := generateOnce(cfg, seed)
		if err != nil {
			return nil, err
		}
		if performsDesignated(sys, cfg.ActionTime) {
			return sys, nil
		}
		seed = seed*6364136223846793005 + 1442695040888963407 // splitmix-style reseed
	}
	return nil, fmt.Errorf("%w: designated action never performed after %d attempts (seed %d)",
		ErrBadConfig, maxAttempts, cfg.Seed)
}

// performsDesignated reports whether agent 0 performs the designated
// action somewhere at the action time.
func performsDesignated(sys *pps.System, actionTime int) bool {
	for r := 0; r < sys.NumRuns(); r++ {
		if act, ok := sys.Action(pps.RunID(r), actionTime, 0); ok && act == DesignatedAction {
			return true
		}
	}
	return false
}

func generateOnce(cfg Config, seed int64) (*pps.System, error) {
	rng := rand.New(rand.NewSource(seed))

	agents := make([]string, cfg.Agents)
	for i := range agents {
		agents[i] = fmt.Sprintf("a%d", i)
	}
	b := pps.NewBuilder(agents...)

	locals := func(t int) []string {
		out := make([]string, cfg.Agents)
		for i := range out {
			out[i] = fmt.Sprintf("a%d-t%d-o%d", i, t, rng.Intn(cfg.ObsAlphabet))
		}
		return out
	}

	// Agent 0's step at ActionTime must be a *protocol*: the probability
	// of performing α must be a function of the local state alone. (The
	// proof of Lemma 4.3(b) relies on exactly this property — the lemma is
	// about protocol-generated systems, and an arbitrary tree that assigns
	// actions per edge can violate it. An early version of this generator
	// did so, and the property tests for Lemma 4.3 caught it.)
	// mixFor draws, once per local state, the probability q(ℓ) with which
	// agent 0 performs α at ℓ.
	mixes := make(map[string]*ratValue)
	mixFor := func(local string) *ratValue {
		if q, ok := mixes[local]; ok {
			return q
		}
		var q *ratValue
		if cfg.DetAction {
			h := 0
			for _, c := range local {
				h = h*31 + int(c)
			}
			if h%2 == 0 {
				q = &ratValue{num: 1, den: 1}
			} else {
				q = &ratValue{num: 0, den: 1}
			}
		} else {
			// Never 0, so mixed-mode systems always perform α somewhere.
			choices := []ratValue{{1, 4}, {1, 2}, {3, 4}, {1, 1}}
			c := choices[rng.Intn(len(choices))]
			q = &c
		}
		mixes[local] = q
		return q
	}

	type nodeInfo struct {
		id    pps.NodeID
		t     int
		local string // agent 0's local state
	}
	var frontier []nodeInfo

	nInit := rng.Intn(cfg.MaxInitial) + 1
	initPrs := randProbs(rng, nInit)
	for k := 0; k < nInit; k++ {
		ls := locals(0)
		id := b.Init(ratutil.R(initPrs[k].num, initPrs[k].den), fmt.Sprintf("e%d", rng.Intn(3)), ls...)
		frontier = append(frontier, nodeInfo{id: id, t: 0, local: ls[0]})
	}

	otherActs := func() []string {
		acts := make([]string, cfg.Agents)
		for i := range acts {
			acts[i] = fmt.Sprintf("act%d", rng.Intn(2))
		}
		return acts
	}

	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		if n.t >= cfg.Depth {
			continue
		}
		if n.t == cfg.ActionTime {
			// Branch exactly on agent 0's mixed step: an α-child with
			// probability q(ℓ) and a β-child with probability 1−q(ℓ).
			q := mixFor(n.local)
			branches := []struct {
				act string
				pr  *ratValue
			}{
				{DesignatedAction, q},
				{OtherAction, &ratValue{num: q.den - q.num, den: q.den}},
			}
			for _, br := range branches {
				if br.pr.num == 0 {
					continue
				}
				acts := otherActs()
				acts[0] = br.act
				ls := locals(n.t + 1)
				id := b.Child(n.id, pps.Step{
					Pr:     ratutil.R(br.pr.num, br.pr.den),
					Acts:   acts,
					Env:    fmt.Sprintf("e%d", rng.Intn(3)),
					Locals: ls,
				})
				frontier = append(frontier, nodeInfo{id: id, t: n.t + 1, local: ls[0]})
			}
			continue
		}
		nKids := rng.Intn(cfg.MaxBranch) + 1
		prs := randProbs(rng, nKids)
		for k := 0; k < nKids; k++ {
			acts := otherActs()
			ls := locals(n.t + 1)
			id := b.Child(n.id, pps.Step{
				Pr:     ratutil.R(prs[k].num, prs[k].den),
				Acts:   acts,
				Env:    fmt.Sprintf("e%d", rng.Intn(3)),
				Locals: ls,
			})
			frontier = append(frontier, nodeInfo{id: id, t: n.t + 1, local: ls[0]})
		}
	}

	sys, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("randsys.Generate(seed=%d): %w", seed, err)
	}
	return sys, nil
}

// PastFact returns a random past-based fact over sys: each tree node is
// labelled true with the given numerator/denominator probability, and the
// fact holds at a point exactly when its node is labelled. By construction
// the fact satisfies the paper's definition of past-based (its value is a
// function of the run prefix).
func PastFact(sys *pps.System, seed int64) logic.Fact {
	rng := rand.New(rand.NewSource(seed))
	labels := make(map[pps.NodeID]bool, sys.NumNodes())
	for id := pps.NodeID(1); int(id) < sys.NumNodes(); id++ {
		labels[id] = rng.Intn(2) == 0
	}
	return logic.Atom(fmt.Sprintf("pastFact(seed=%d)", seed),
		func(s *pps.System, r pps.RunID, t int) bool {
			return labels[s.NodeAt(r, t)]
		})
}

// RunFact returns a random fact about runs over sys: each run is labelled
// true with probability 1/2 and the fact holds at every point of a
// labelled run. It is run-based by construction but in general NOT
// past-based (the label depends on the whole run).
func RunFact(sys *pps.System, seed int64) logic.Fact {
	rng := rand.New(rand.NewSource(seed))
	labels := make([]bool, sys.NumRuns())
	for i := range labels {
		labels[i] = rng.Intn(2) == 0
	}
	return logic.Atom(fmt.Sprintf("runFact(seed=%d)", seed),
		func(_ *pps.System, r pps.RunID, _ int) bool {
			return labels[r]
		})
}
