package core

import (
	"context"
	"testing"

	"pak/internal/logic"
	"pak/internal/randsys"
)

// TestIndependenceScanCtxCut: the Definition 4.1 scan consults the
// context at its coarse interval, so on a system with more local states
// than the interval an already-dead context cuts the scan with its
// cause — and because the memo never retains context aborts, a later
// caller with a live context still computes the exact report.
func TestIndependenceScanCtxCut(t *testing.T) {
	sys, err := randsys.Generate(randsys.Config{
		Agents: 2, Depth: 6, MaxBranch: 3, MaxInitial: 2,
		ObsAlphabet: 64, ActionTime: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	agent := sys.AgentName(0)
	if n := len(sys.LocalStates(0)); n <= indepCtxInterval {
		t.Skipf("system has %d local states, below the %d-state check interval", n, indepCtxInterval)
	}
	fact := logic.Does(agent, randsys.DesignatedAction)

	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(context.DeadlineExceeded)
	if _, err := e.LocalStateIndependenceCtx(ctx, fact, agent, randsys.DesignatedAction); !IsContextErr(err) {
		t.Fatalf("dead-context scan err = %v, want the deadline cause", err)
	}

	// The abort is not cached: the same engine answers a live caller.
	report, err := e.LocalStateIndependence(fact, agent, randsys.DesignatedAction)
	if err != nil {
		t.Fatalf("live scan after abort: %v", err)
	}
	// And the memoized entry now serves the dead-context caller too (a
	// cache hit needs no scan to cut).
	report2, err := e.LocalStateIndependenceCtx(ctx, fact, agent, randsys.DesignatedAction)
	if err != nil || report2.Independent != report.Independent {
		t.Fatalf("cached report under dead context = (%+v, %v)", report2, err)
	}
}
