package core

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"pak/internal/logic"
	"pak/internal/ratutil"
)

// Audit is the one-call complete analysis of a probabilistic constraint
// µ(φ@α | α) ≥ p: every quantity the paper's framework attaches to the
// (system, fact, agent, action, threshold) tuple, computed exactly. It is
// the programmatic equivalent of the pakcheck CLI's output.
type Audit struct {
	// Agent, Action and Fact identify the analyzed constraint.
	Agent, Action string
	Fact          string
	// Threshold is the constraint's p.
	Threshold *big.Rat

	// ConstraintProb is µ(φ@α | α).
	ConstraintProb *big.Rat
	// Satisfied is ConstraintProb ≥ Threshold.
	Satisfied bool
	// ExpectedBelief is E[β(φ)@α | α]; equals ConstraintProb whenever
	// Independence holds (Theorem 6.2).
	ExpectedBelief *big.Rat
	// MinBelief and MaxBelief bound β over the acting states.
	MinBelief, MaxBelief *big.Rat
	// ThresholdMet is µ(β ≥ p | α).
	ThresholdMet *big.Rat
	// BeliefByState maps each acting local state to its belief.
	BeliefByState map[string]*big.Rat

	// Independence diagnostics (Definition 4.1 / Lemma 4.3).
	Independence IndependenceWitness
	// Refrain is the Section 8 pruning analysis at the threshold.
	Refrain RefrainReport

	// Theorem verdicts on this system.
	Expectation ExpectationReport
	Sufficiency SufficiencyReport
	Necessity   NecessityReport
	KoPLimit    KoPReport
}

// AllTheoremsHold reports whether every checked result holds (it must, on
// any valid system — a false value would be a counterexample to the
// paper).
func (a Audit) AllTheoremsHold() bool {
	return a.Expectation.Holds() && a.Sufficiency.Holds() &&
		a.Necessity.Holds() && a.KoPLimit.Holds()
}

// String renders a multi-line summary.
func (a Audit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit of µ(%s @ %s | %s) ≥ %s for agent %s\n",
		a.Fact, a.Action, a.Action, a.Threshold.RatString(), a.Agent)
	fmt.Fprintf(&b, "  µ = %s (satisfied: %v)\n", a.ConstraintProb.RatString(), a.Satisfied)
	fmt.Fprintf(&b, "  E[β] = %s, β ∈ [%s, %s], µ(β ≥ p | α) = %s\n",
		a.ExpectedBelief.RatString(), a.MinBelief.RatString(), a.MaxBelief.RatString(),
		a.ThresholdMet.RatString())
	fmt.Fprintf(&b, "  independent=%v (det=%v, past=%v)\n",
		a.Independence.Independent, a.Independence.Deterministic, a.Independence.PastBased)
	states := make([]string, 0, len(a.BeliefByState))
	for s := range a.BeliefByState {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(&b, "  β@%q = %s\n", s, a.BeliefByState[s].RatString())
	}
	fmt.Fprintf(&b, "  refrain: %s\n", a.Refrain)
	fmt.Fprintf(&b, "  theorems hold: %v", a.AllTheoremsHold())
	return b.String()
}

// AuditConstraint runs the complete analysis for the constraint
// µ(φ@α | α) ≥ p. The action must be proper.
func (e *Engine) AuditConstraint(f logic.Fact, agent, action string, p *big.Rat) (Audit, error) {
	if p == nil || !ratutil.IsProb(p) {
		return Audit{}, fmt.Errorf("%w: threshold %v not in [0,1]", ErrBadPoint, p)
	}
	audit := Audit{
		Agent:     agent,
		Action:    action,
		Fact:      f.String(),
		Threshold: ratutil.Copy(p),
	}
	var err error
	if audit.ConstraintProb, err = e.ConstraintProb(f, agent, action); err != nil {
		return Audit{}, err
	}
	audit.Satisfied = ratutil.Geq(audit.ConstraintProb, p)
	if audit.ExpectedBelief, err = e.ExpectedBelief(f, agent, action); err != nil {
		return Audit{}, err
	}
	if audit.MinBelief, audit.MaxBelief, err = e.BeliefRangeAtAction(f, agent, action); err != nil {
		return Audit{}, err
	}
	if audit.ThresholdMet, err = e.ThresholdMeasure(f, agent, action, p); err != nil {
		return Audit{}, err
	}
	if audit.BeliefByState, err = e.BeliefByActionState(f, agent, action); err != nil {
		return Audit{}, err
	}
	if audit.Independence, err = e.ExplainIndependence(f, agent, action); err != nil {
		return Audit{}, err
	}
	if audit.Refrain, err = e.RefrainAnalysis(f, agent, action, p); err != nil {
		return Audit{}, err
	}
	if audit.Expectation, err = e.CheckExpectation(f, agent, action); err != nil {
		return Audit{}, err
	}
	if audit.Sufficiency, err = e.CheckSufficiency(f, agent, action, p); err != nil {
		return Audit{}, err
	}
	if audit.Necessity, err = e.CheckNecessity(f, agent, action, p); err != nil {
		return Audit{}, err
	}
	if audit.KoPLimit, err = e.CheckKoPLimit(f, agent, action); err != nil {
		return Audit{}, err
	}
	return audit, nil
}
