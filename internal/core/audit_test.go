package core

import (
	"errors"
	"strings"
	"testing"

	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/ratutil"
)

func TestAuditFiringSquad(t *testing.T) {
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	audit, err := e.AuditConstraint(paper.FSBothFire(), paper.Alice, paper.ActFire, ratutil.R(95, 100))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  string
		want string
	}{
		{"µ", audit.ConstraintProb.RatString(), "99/100"},
		{"E[β]", audit.ExpectedBelief.RatString(), "99/100"},
		{"min β", audit.MinBelief.RatString(), "0"},
		{"max β", audit.MaxBelief.RatString(), "1"},
		{"µ(β≥p|α)", audit.ThresholdMet.RatString(), "991/1000"},
		{"refrain prediction", audit.Refrain.Predicted.RatString(), "990/991"},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %s, want %s", c.name, c.got, c.want)
		}
	}
	if !audit.Satisfied {
		t.Error("constraint should be satisfied")
	}
	if !audit.Independence.Independent || !audit.Independence.Deterministic || !audit.Independence.PastBased {
		t.Errorf("independence witness = %+v", audit.Independence)
	}
	if len(audit.BeliefByState) != 3 {
		t.Errorf("acting states = %d, want 3", len(audit.BeliefByState))
	}
	if !audit.AllTheoremsHold() {
		t.Error("all theorems must hold")
	}
	out := audit.String()
	for _, want := range []string{"µ = 99/100", "satisfied: true", "refrain", "theorems hold: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestAuditFigure1(t *testing.T) {
	// On Figure 1 with the dependent fact, the audit records the failed
	// independence and the failed identity without any theorem being
	// contradicted (hypotheses fail).
	sys, err := paper.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	audit, err := e.AuditConstraint(paper.Figure1PhiFact(), paper.AgentI, paper.ActAlpha, ratutil.R(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if audit.Independence.Independent {
		t.Error("Figure 1 should fail independence")
	}
	if audit.Expectation.Equal() {
		t.Error("identity should fail on Figure 1")
	}
	if !audit.AllTheoremsHold() {
		t.Error("theorems hold vacuously when hypotheses fail")
	}
}

func TestAuditErrors(t *testing.T) {
	sys, err := paper.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	if _, err := e.AuditConstraint(logic.True(), paper.AgentI, "never", ratutil.R(1, 2)); !errors.Is(err, ErrNotProper) {
		t.Errorf("improper action err = %v", err)
	}
	if _, err := e.AuditConstraint(logic.True(), paper.AgentI, paper.ActAlpha, ratutil.R(3, 2)); !errors.Is(err, ErrBadPoint) {
		t.Errorf("bad threshold err = %v", err)
	}
	if _, err := e.AuditConstraint(logic.True(), paper.AgentI, paper.ActAlpha, nil); !errors.Is(err, ErrBadPoint) {
		t.Errorf("nil threshold err = %v", err)
	}
}
