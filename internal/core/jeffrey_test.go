package core

import (
	"errors"
	"strings"
	"testing"

	"pak/internal/logic"
	"pak/internal/ratutil"
)

func TestDecomposeThat(t *testing.T) {
	// On T-hat(9/10, 1/10): two cells — recv=m with weight 9/10 and
	// posterior 8/9, recv=m' with weight 1/10 and posterior 1. Their
	// weighted sum is the constraint value p = 9/10.
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	e := that(t, p, eps)
	d, err := e.Decompose(bitIsOne(), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(d.Cells))
	}
	if !d.WeightsSumToOne() {
		t.Error("weights must sum to 1")
	}
	if !d.LemmaB1Holds() {
		t.Error("Lemma B.1 must hold on T-hat (independent case)")
	}
	byLocal := map[string]JeffreyCell{}
	for _, c := range d.Cells {
		byLocal[c.Local] = c
	}
	m := byLocal["i1:recv=m"]
	if !ratutil.Eq(m.Weight, ratutil.R(9, 10)) {
		t.Errorf("recv=m weight = %v, want 9/10", m.Weight)
	}
	if !ratutil.Eq(m.Posterior, ratutil.R(8, 9)) {
		t.Errorf("recv=m posterior = %v, want 8/9", m.Posterior)
	}
	mp := byLocal["i1:recv=m'"]
	if !ratutil.Eq(mp.Weight, ratutil.R(1, 10)) || !ratutil.IsOne(mp.Posterior) {
		t.Errorf("recv=m' cell = %v", mp)
	}
	if !ratutil.Eq(d.ExpectedBelief, p) || !ratutil.Eq(d.ConstraintProb, p) {
		t.Errorf("aggregates = (%v, %v), want both 9/10", d.ExpectedBelief, d.ConstraintProb)
	}
	if !strings.Contains(d.Cells[0].String(), "w=") {
		t.Errorf("cell String = %q", d.Cells[0].String())
	}
}

func TestDecomposeLocalizesIndependenceFailure(t *testing.T) {
	// On Figure 1 with φ = does(α): the single cell has posterior 1/2 but
	// cell constraint 1 — Lemma B.1 fails exactly where Definition 4.1
	// does.
	e := figure1(t)
	d, err := e.Decompose(logic.Does("i", "alpha"), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(d.Cells))
	}
	c := d.Cells[0]
	if !ratutil.Eq(c.Posterior, ratutil.R(1, 2)) || !ratutil.IsOne(c.CellConstraint) {
		t.Fatalf("cell = %v, want β=1/2 µ|cell=1", c)
	}
	if d.LemmaB1Holds() {
		t.Error("Lemma B.1 must fail on the dependent case")
	}
	if !d.WeightsSumToOne() {
		t.Error("weights still sum to 1")
	}
	// The aggregates reproduce both sides of the (failing) identity.
	if !ratutil.Eq(d.ExpectedBelief, ratutil.R(1, 2)) || !ratutil.IsOne(d.ConstraintProb) {
		t.Fatalf("aggregates = (%v, %v)", d.ExpectedBelief, d.ConstraintProb)
	}
}

func TestDecomposeAgreesWithEngine(t *testing.T) {
	// The decomposition's aggregates must equal the engine's direct
	// queries on any system/fact pair.
	e := that(t, ratutil.R(95, 100), ratutil.R(3, 100))
	phi := bitIsOne()
	d, err := e.Decompose(phi, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	mu, err := e.ConstraintProb(phi, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := e.ExpectedBelief(phi, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(d.ConstraintProb, mu) || !ratutil.Eq(d.ExpectedBelief, exp) {
		t.Fatalf("decomposition disagrees with engine: %v vs %v, %v vs %v",
			d.ConstraintProb, mu, d.ExpectedBelief, exp)
	}
}

func TestDecomposeErrors(t *testing.T) {
	e := figure1(t)
	if _, err := e.Decompose(logic.True(), "i", "never"); !errors.Is(err, ErrNotProper) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.Decompose(logic.True(), "nobody", "alpha"); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("err = %v", err)
	}
}

func TestBeliefTimelineThat(t *testing.T) {
	// Along the revealing run r'' of T-hat, i's belief in bit=1 jumps
	// from the prior 9/10 at t0 to certainty at t1.
	e := that(t, ratutil.R(9, 10), ratutil.R(1, 10))
	tl, err := e.BeliefTimeline(bitIsOne(), "i", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 {
		t.Fatalf("timeline length = %d, want 3", len(tl))
	}
	if !ratutil.Eq(tl[0].Belief, ratutil.R(9, 10)) || tl[0].Knows {
		t.Errorf("t0: %v, want prior 9/10, no knowledge", tl[0])
	}
	if !ratutil.IsOne(tl[1].Belief) || !tl[1].Knows {
		t.Errorf("t1: %v, want certainty", tl[1])
	}
	if !tl[2].Knows {
		t.Errorf("t2: %v, knowledge persists for a run-based fact", tl[2])
	}
	// Along the non-revealing bit=1 run r', belief moves 9/10 → 8/9.
	tl, err = e.BeliefTimeline(bitIsOne(), "i", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(tl[1].Belief, ratutil.R(8, 9)) {
		t.Errorf("non-revealing t1 belief = %v, want 8/9", tl[1].Belief)
	}
	if !strings.Contains(tl[1].String(), "t=1") {
		t.Errorf("point String = %q", tl[1].String())
	}
}

func TestBeliefTimelineErrors(t *testing.T) {
	e := figure1(t)
	if _, err := e.BeliefTimeline(logic.True(), "i", 99); !errors.Is(err, ErrBadPoint) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.BeliefTimeline(logic.True(), "nobody", 0); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("err = %v", err)
	}
}

func TestExpectedBeliefAtTimeMartingale(t *testing.T) {
	// For a fact about runs, E[β at t] equals the prior µ(φ) at every
	// time (all runs have equal length in T-hat): Bayesian updating is a
	// martingale.
	p := ratutil.R(9, 10)
	e := that(t, p, ratutil.R(1, 10))
	phi := bitIsOne()
	for tt := 0; tt <= 2; tt++ {
		got, err := e.ExpectedBeliefAtTime(phi, "i", tt)
		if err != nil {
			t.Fatal(err)
		}
		if !ratutil.Eq(got, p) {
			t.Errorf("E[β at t=%d] = %v, want %v", tt, got, p)
		}
	}
}

func TestExpectedBeliefAtTimeErrors(t *testing.T) {
	e := figure1(t)
	if _, err := e.ExpectedBeliefAtTime(logic.True(), "i", -1); !errors.Is(err, ErrBadPoint) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.ExpectedBeliefAtTime(logic.True(), "i", 99); !errors.Is(err, ErrBadPoint) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.ExpectedBeliefAtTime(logic.True(), "nobody", 0); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("err = %v", err)
	}
}
