package core

// Tests for the structure-sharing constructor (NewSeeded) and the
// incremental Definition 4.1 scan. The soundness obligations, stated as
// differentials:
//
//   - a seeded engine must answer every query with exactly the rationals
//     a fresh engine computes (the shared perf/events tables are pure
//     label-functions; see NewSeeded's doc for the precise line);
//   - sharing must refuse engines of different shape (the gate is
//     pps.SameShape, compared on labels only — never on measures, which
//     is precisely what lets a sweep's loss-assignments share);
//   - the incremental independence scan must reproduce the direct
//     O(states × runs) reading of Definition 4.1 verbatim, violations
//     and their order included.

import (
	"math/big"
	"testing"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/randsys"
	"pak/internal/ratutil"
	"pak/internal/runset"
	"pak/internal/scenarios"
)

// directIndependence is the reference reading of Definition 4.1: for
// every local state ℓ, scan the runs through ℓ outright — no occurrence
// index, no skip for never-performing locals — and compare
// µ(φ@ℓ|ℓ)·µ(α@ℓ|ℓ) with µ([φ∧α]@ℓ|ℓ).
func directIndependence(t *testing.T, sys *pps.System, f logic.Fact, agent, action string) IndependenceReport {
	t.Helper()
	a, ok := sys.AgentIndex(agent)
	if !ok {
		t.Fatalf("no agent %q", agent)
	}
	report := IndependenceReport{Independent: true}
	for _, local := range sys.LocalStates(a) {
		occ, at, ok := sys.Occurs(a, local)
		if !ok {
			continue
		}
		factAt := runset.New(sys.NumRuns())
		actAt := runset.New(sys.NumRuns())
		for r := 0; r < sys.NumRuns(); r++ {
			if !occ.Contains(r) {
				continue
			}
			if f.Holds(sys, pps.RunID(r), at) {
				factAt.Add(r)
			}
			if got, performed := sys.Action(pps.RunID(r), at, a); performed && got == action {
				actAt.Add(r)
			}
		}
		mOcc := sys.Measure(occ)
		if mOcc.Sign() == 0 {
			continue
		}
		pFact := ratutil.Div(sys.Measure(factAt), mOcc)
		pAct := ratutil.Div(sys.Measure(actAt), mOcc)
		pJoint := ratutil.Div(sys.Measure(factAt.Intersect(actAt)), mOcc)
		product := ratutil.Mul(pFact, pAct)
		if !ratutil.Eq(product, pJoint) {
			report.Independent = false
			report.Violations = append(report.Violations, IndependenceViolation{
				Local: local, Product: product, Joint: pJoint,
			})
		}
	}
	return report
}

// sameReport compares two independence reports including the violation
// list, order and both sides of each violated equation.
func sameReport(got, want IndependenceReport) bool {
	if got.Independent != want.Independent || len(got.Violations) != len(want.Violations) {
		return false
	}
	for i := range got.Violations {
		g, w := got.Violations[i], want.Violations[i]
		if g.Local != w.Local || !ratutil.Eq(g.Product, w.Product) || !ratutil.Eq(g.Joint, w.Joint) {
			return false
		}
	}
	return true
}

// TestIndependenceIncrementalMatchesDirect holds the incremental scan
// to the direct Definition 4.1 reading on the paper's Figure 1 (where
// independence fails and the violation's rationals matter) and on a
// spread of random systems with structured past facts.
func TestIndependenceIncrementalMatchesDirect(t *testing.T) {
	e := figure1(t)
	fig1Fact := logic.Not(logic.Does("i", "alpha"))
	got, err := e.LocalStateIndependence(fig1Fact, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if want := directIndependence(t, e.sys, fig1Fact, "i", "alpha"); !sameReport(got, want) {
		t.Errorf("figure1: incremental %+v, direct %+v", got, want)
	}
	if got.Independent {
		t.Error("figure1 counterexample reported independent; the differential proved nothing")
	}

	for seed := int64(1); seed <= 12; seed++ {
		cfg := randsys.Default(seed)
		cfg.DetAction = seed%2 == 0
		sys, err := randsys.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := New(sys)
		agent := sys.AgentName(0)
		for _, f := range []logic.Fact{
			logic.True(),
			logic.Does(agent, randsys.DesignatedAction),
			randsys.StructuredPastFact(sys, seed*17+5),
		} {
			got, err := e.LocalStateIndependence(f, agent, randsys.DesignatedAction)
			if err != nil {
				t.Fatalf("seed %d fact %v: %v", seed, f, err)
			}
			if want := directIndependence(t, sys, f, agent, randsys.DesignatedAction); !sameReport(got, want) {
				t.Errorf("seed %d fact %v: incremental %+v, direct %+v", seed, f, got, want)
			}
		}
	}
}

// squadEngine unfolds nsquad(n, loss) for the seeding tests.
func squadEngine(t *testing.T, n int64, lossNum int64) *Engine {
	t.Helper()
	sys, err := scenarios.NFiringSquadSystem(int(n), ratutil.R(lossNum, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	return New(sys)
}

// TestNewSeededShapeGate: sharing engages exactly when pps.SameShape
// holds — loss-assignments of one squad share (they differ only in
// measure), squads of different size refuse, nil seeds refuse.
func TestNewSeededShapeGate(t *testing.T) {
	a := squadEngine(t, 3, 1)
	if _, shared := NewSeeded(a.sys, nil); shared {
		t.Error("nil neighbour engaged sharing")
	}
	b := squadEngine(t, 3, 3)
	seeded, shared := NewSeeded(b.sys, a)
	if !shared {
		t.Fatal("same-shape loss neighbours refused to share")
	}
	if seeded.perf != a.perf || seeded.events != a.events {
		t.Error("seeded engine does not share the structural tables")
	}
	if seeded.beliefs == a.beliefs || seeded.indeps == a.indeps {
		t.Error("seeded engine shares a µ_T-dependent table; that is unsound across measures")
	}
	other := squadEngine(t, 2, 1)
	if _, shared := NewSeeded(other.sys, a); shared {
		t.Error("nsquad(2) shared tables with nsquad(3); shapes differ")
	}
}

// TestSeededEngineMatchesFresh is the soundness differential: warm an
// engine on one loss assignment, seed a neighbour from it, and hold
// every answer class that crosses the shared tables — beliefs,
// constraint probabilities, expectations, threshold measures, the
// independence report, the theorem checkers — to the rationals a fresh
// engine computes for the neighbour's measure.
func TestSeededEngineMatchesFresh(t *testing.T) {
	const n = 3
	warm := squadEngine(t, n, 1)
	fact := scenarios.AllFireFact(n)

	// Warm the shared tables through the first assignment.
	if _, err := warm.ConstraintProb(fact, scenarios.General, scenarios.ActFire); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.LocalStateIndependence(fact, scenarios.General, scenarios.ActFire); err != nil {
		t.Fatal(err)
	}

	fresh := squadEngine(t, n, 3)
	seeded, shared := NewSeeded(fresh.sys, warm)
	if !shared {
		t.Fatal("seeding refused between loss assignments of one squad")
	}

	check := func(name string, f func(e *Engine) (*big.Rat, error)) {
		t.Helper()
		want, err1 := f(fresh)
		got, err2 := f(seeded)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: fresh err %v, seeded err %v", name, err1, err2)
		}
		if !ratutil.Eq(got, want) {
			t.Errorf("%s: seeded %s, fresh %s", name, got.RatString(), want.RatString())
		}
	}
	check("constraint", func(e *Engine) (*big.Rat, error) {
		return e.ConstraintProb(fact, scenarios.General, scenarios.ActFire)
	})
	check("expected belief", func(e *Engine) (*big.Rat, error) {
		return e.ExpectedBelief(fact, scenarios.General, scenarios.ActFire)
	})
	check("threshold measure", func(e *Engine) (*big.Rat, error) {
		return e.ThresholdMeasure(fact, scenarios.General, scenarios.ActFire, ratutil.R(1, 2))
	})
	local := fresh.sys.LocalStates(0)[0]
	check("belief at local", func(e *Engine) (*big.Rat, error) {
		return e.Belief(fact, fresh.sys.AgentName(0), local)
	})

	gotRep, err := seeded.LocalStateIndependence(fact, scenarios.General, scenarios.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := fresh.LocalStateIndependence(fact, scenarios.General, scenarios.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !sameReport(gotRep, wantRep) {
		t.Errorf("independence: seeded %+v, fresh %+v", gotRep, wantRep)
	}

	gotSuf, err1 := seeded.CheckSufficiency(fact, scenarios.General, scenarios.ActFire, ratutil.R(1, 2))
	wantSuf, err2 := fresh.CheckSufficiency(fact, scenarios.General, scenarios.ActFire, ratutil.R(1, 2))
	if err1 != nil || err2 != nil {
		t.Fatalf("sufficiency: seeded err %v, fresh err %v", err1, err2)
	}
	if gotSuf.Holds() != wantSuf.Holds() || gotSuf.Independent != wantSuf.Independent ||
		!ratutil.Eq(gotSuf.MinBelief, wantSuf.MinBelief) || !ratutil.Eq(gotSuf.ConstraintProb, wantSuf.ConstraintProb) {
		t.Errorf("sufficiency: seeded %+v, fresh %+v", gotSuf, wantSuf)
	}
}
