package core

import (
	"errors"
	"strings"
	"testing"

	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/ratutil"
)

// TestRefrainPredictsSection8 is the headline check: pruning Alice's
// low-belief firing states in the ORIGINAL FS predicts exactly the
// constraint value of the IMPROVED protocol, 990/991 — Section 8's number
// derived through Theorem 6.2's decomposition alone.
func TestRefrainPredictsSection8(t *testing.T) {
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	rep, err := e.RefrainAnalysis(paper.FSBothFire(), paper.Alice, paper.ActFire, ratutil.R(95, 100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predicted == nil || !ratutil.Eq(rep.Predicted, ratutil.R(990, 991)) {
		t.Fatalf("predicted = %v, want 990/991", rep.Predicted)
	}
	if !rep.Improves() {
		t.Error("pruning should strictly improve")
	}
	if !ratutil.Eq(rep.Original, ratutil.R(99, 100)) {
		t.Errorf("original = %v", rep.Original)
	}
	// The pruned state is the 'No' state; kept are Yes and silence.
	if len(rep.Pruned) != 1 || !strings.Contains(rep.Pruned[0], "recv=No") {
		t.Errorf("pruned = %v", rep.Pruned)
	}
	if len(rep.Kept) != 2 {
		t.Errorf("kept = %v", rep.Kept)
	}
	// Surviving acting measure: 991/1000 of the original.
	if !ratutil.Eq(rep.ActingMeasure, ratutil.R(991, 1000)) {
		t.Errorf("acting measure = %v, want 991/1000", rep.ActingMeasure)
	}

	// Cross-validate against the actually-improved protocol.
	improved, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSImproved)
	if err != nil {
		t.Fatal(err)
	}
	improvedMu, err := New(improved).ConstraintProb(paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(rep.Predicted, improvedMu) {
		t.Fatalf("prediction %v != improved protocol's value %v", rep.Predicted, improvedMu)
	}
}

func TestRefrainOnThat(t *testing.T) {
	// Pruning T-hat's non-revealing state leaves only the certain state:
	// µ' = 1, at the cost of acting only with probability ε.
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	sys, err := paper.That(p, eps)
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	rep, err := e.RefrainAnalysis(paper.ThatBitFact(), paper.AgentI, paper.ActAlpha, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predicted == nil || !ratutil.IsOne(rep.Predicted) {
		t.Fatalf("predicted = %v, want 1", rep.Predicted)
	}
	if !ratutil.Eq(rep.ActingMeasure, eps) {
		t.Fatalf("acting measure = %v, want ε", rep.ActingMeasure)
	}
}

func TestRefrainNoImprovementPossible(t *testing.T) {
	// With threshold 0 nothing is pruned: prediction = original.
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	rep, err := e.RefrainAnalysis(paper.FSBothFire(), paper.Alice, paper.ActFire, ratutil.Zero())
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(rep.Predicted, rep.Original) || rep.Improves() {
		t.Fatalf("threshold 0: %v", rep)
	}
	if len(rep.Pruned) != 0 {
		t.Errorf("pruned = %v", rep.Pruned)
	}
}

func TestRefrainEverythingPruned(t *testing.T) {
	// A threshold above every belief prunes all acting states: the agent
	// never acts, Predicted is nil.
	sys, err := paper.That(ratutil.R(1, 2), ratutil.R(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	// Beliefs are 1/3 and 1; use a fact that is never certain: bit=0.
	notBit := logic.Not(paper.ThatBitFact())
	rep, err := e.RefrainAnalysis(notBit, paper.AgentI, paper.ActAlpha, ratutil.MustParse("999/1000"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predicted != nil {
		t.Fatalf("predicted = %v, want nil (never acts)", rep.Predicted)
	}
	if rep.Improves() {
		t.Error("no action cannot improve")
	}
	if !strings.Contains(rep.String(), "never acts") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestRefrainMonotoneInThreshold(t *testing.T) {
	// Raising the threshold never lowers the predicted value (as long as
	// some state survives): the retained cells are a superset relation.
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	var prev *RefrainReport
	for _, p := range []string{"0", "1/2", "95/100", "1"} {
		rep, err := e.RefrainAnalysis(paper.FSBothFire(), paper.Alice, paper.ActFire, ratutil.MustParse(p))
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && prev.Predicted != nil && rep.Predicted != nil {
			if ratutil.Less(rep.Predicted, prev.Predicted) {
				t.Fatalf("prediction dropped from %v to %v at p=%s", prev.Predicted, rep.Predicted, p)
			}
		}
		repCopy := rep
		prev = &repCopy
	}
}

func TestRefrainErrors(t *testing.T) {
	sys, err := paper.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	if _, err := e.RefrainAnalysis(logic.True(), "i", "never", ratutil.R(1, 2)); !errors.Is(err, ErrNotProper) {
		t.Errorf("err = %v", err)
	}
}
