package core

import (
	"context"
	"fmt"
	"math/big"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Belief queries (Section 3 of the paper). The agent's subjective
// probabilistic belief is the posterior obtained by conditioning the prior
// µ_T on the agent's local state: β_i(φ) at (r, t) is µ_T(φ@ℓ | ℓ) for
// ℓ = r_i(t). Since synchrony makes a local state occur at most once per
// run, φ@ℓ ("φ holds when i is in state ℓ in the current run") is a
// well-defined fact about runs and corresponds to a measurable event.

// FactAtLocal returns the event φ@ℓ: the runs in which agent's local state
// equals local at some point (necessarily a unique time) and φ holds at
// that point. Extensions are memoized per (φ, agent, ℓ); the returned set
// is a private copy the caller may mutate.
func (e *Engine) FactAtLocal(f logic.Fact, agent, local string) (*runset.Set, error) {
	return e.FactAtLocalCtx(context.Background(), f, agent, local)
}

// FactAtLocalCtx is FactAtLocal bound to a context: the scan over the
// runs through ℓ checks ctx every indepCtxInterval runs and aborts with
// the context's cause, so a deadline cuts even one long extension scan
// instead of letting it run to completion. An aborted scan is never
// memoized (the memo evicts context aborts), so a later caller with a
// live context recomputes the extension.
func (e *Engine) FactAtLocalCtx(ctx context.Context, f logic.Fact, agent, local string) (*runset.Set, error) {
	a, err := e.agent(agent)
	if err != nil {
		return nil, err
	}
	ev, err := e.factAtLocal(ctx, f, a, agent, local)
	if err != nil {
		return nil, err
	}
	return ev.Clone(), nil
}

// factAtLocal is FactAtLocalCtx without the defensive clone; the
// returned set may be the shared cache entry and must not be mutated.
func (e *Engine) factAtLocal(ctx context.Context, f logic.Fact, a pps.AgentID, agent, local string) (*runset.Set, error) {
	compute := func() (*runset.Set, error) {
		occ, tm, ok := e.sys.OccursShared(a, local)
		if !ok {
			return nil, fmt.Errorf("%w: agent %q state %q", ErrUnknownLocal, agent, local)
		}
		ev := e.sys.NewSet()
		n := 0
		var cause error
		occ.ForEach(func(r int) bool {
			if n%indepCtxInterval == indepCtxInterval-1 {
				if cause = context.Cause(ctx); cause != nil {
					return false
				}
			}
			n++
			if f.Holds(e.sys, pps.RunID(r), tm) {
				ev.Add(r)
			}
			return true
		})
		if cause != nil {
			return nil, fmt.Errorf("core: φ@ℓ scan aborted after %d runs: %w", n, cause)
		}
		return ev, nil
	}
	fk, cacheable := factKey(f)
	if !cacheable {
		return compute()
	}
	return e.events.getCtx(ctx, eventKey{fact: fk, agent: a, kind: eventAtLocal, at: local}, compute)
}

// Belief returns β_i(φ) at local state ℓ: µ_T(φ@ℓ | ℓ) (Definition 3.1).
// The belief is a property of the local state alone — it is the same at
// every point where the agent is in state ℓ.
func (e *Engine) Belief(f logic.Fact, agent, local string) (*big.Rat, error) {
	a, err := e.agent(agent)
	if err != nil {
		return nil, err
	}
	compute := func() (*big.Rat, error) {
		occ, _, ok := e.sys.OccursShared(a, local)
		if !ok {
			return nil, fmt.Errorf("%w: agent %q state %q", ErrUnknownLocal, agent, local)
		}
		ev, evErr := e.factAtLocal(context.Background(), f, a, agent, local)
		if evErr != nil {
			return nil, evErr
		}
		// Fused kernel conditional: φ@ℓ ∩ ℓ is never materialized.
		cond, condOK := e.sys.Cond(ev, occ)
		if !condOK {
			// Unreachable in a valid pps: every occurring local state has
			// positive measure because all runs do.
			return nil, fmt.Errorf("%w: state %q has zero measure", ErrUnknownLocal, local)
		}
		return cond, nil
	}
	var bel *big.Rat
	if fk, cacheable := factKey(f); cacheable {
		bel, err = e.beliefs.get(beliefKey{fact: fk, agent: a, local: local}, compute)
	} else {
		bel, err = compute()
	}
	if err != nil {
		return nil, err
	}
	// Return a private copy: callers are free to mutate their result.
	return ratutil.Copy(bel), nil
}

// BeliefAtPoint returns β_i(φ) at the point (r, t): the belief at the
// agent's local state there.
func (e *Engine) BeliefAtPoint(f logic.Fact, agent string, r pps.RunID, t int) (*big.Rat, error) {
	a, err := e.agent(agent)
	if err != nil {
		return nil, err
	}
	if r < 0 || int(r) >= e.sys.NumRuns() || t < 0 || t >= e.sys.RunLen(r) {
		return nil, fmt.Errorf("%w: (%d, %d)", ErrBadPoint, r, t)
	}
	return e.Belief(f, agent, e.sys.Local(r, t, a))
}

// Knows reports whether agent knows φ at (r, t) in the S5 sense of the
// interpreted-systems framework: φ@ℓ holds in every run in which the
// agent's current local state ℓ occurs. In a pps the prior has full
// support, so K_i(φ) coincides with β_i(φ) = 1.
func (e *Engine) Knows(f logic.Fact, agent string, r pps.RunID, t int) (bool, error) {
	return e.KnowsCtx(context.Background(), f, agent, r, t)
}

// KnowsCtx is Knows bound to a context. It routes through the memoized
// factAtLocal path — K_i(φ) at ℓ holds exactly when the extension φ@ℓ
// covers every run through ℓ, i.e. occ ⊆ ev — so repeated knowledge
// queries at the same state (the Lemma F.1 checker asks once per acting
// run) share one extension scan instead of rescanning f.Holds per call,
// and a dead context cuts a long scan with the same
// every-indepCtxInterval-runs discipline as FactAtLocalCtx.
func (e *Engine) KnowsCtx(ctx context.Context, f logic.Fact, agent string, r pps.RunID, t int) (bool, error) {
	a, err := e.agent(agent)
	if err != nil {
		return false, err
	}
	if r < 0 || int(r) >= e.sys.NumRuns() || t < 0 || t >= e.sys.RunLen(r) {
		return false, fmt.Errorf("%w: (%d, %d)", ErrBadPoint, r, t)
	}
	local := e.sys.Local(r, t, a)
	occ, _, ok := e.sys.OccursShared(a, local)
	if !ok {
		// Unreachable: the point (r, t) exhibits the state.
		return false, fmt.Errorf("%w: agent %q state %q", ErrUnknownLocal, agent, local)
	}
	ev, err := e.factAtLocal(ctx, f, a, agent, local)
	if err != nil {
		return false, err
	}
	return occ.SubsetOf(ev), nil
}

// FactAtAction returns the event φ@α: the runs in which agent performs
// the proper action α, and φ holds at the (unique) point of performance
// (Section 3.1).
func (e *Engine) FactAtAction(f logic.Fact, agent, action string) (*runset.Set, error) {
	return e.FactAtActionCtx(context.Background(), f, agent, action)
}

// FactAtActionCtx is FactAtAction bound to a context, with the same
// every-indepCtxInterval-runs cancellation discipline (and the same
// no-memoized-aborts guarantee) as FactAtLocalCtx.
func (e *Engine) FactAtActionCtx(ctx context.Context, f logic.Fact, agent, action string) (*runset.Set, error) {
	ev, err := e.factAtAction(ctx, f, agent, action)
	if err != nil {
		return nil, err
	}
	return ev.Clone(), nil
}

// factAtAction is FactAtActionCtx without the defensive clone; the
// returned set may be the shared cache entry and must not be mutated.
func (e *Engine) factAtAction(ctx context.Context, f logic.Fact, agent, action string) (*runset.Set, error) {
	a, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	compute := func() (*runset.Set, error) {
		ev := e.sys.NewSet()
		n := 0
		var cause error
		info.set.ForEach(func(r int) bool {
			if n%indepCtxInterval == indepCtxInterval-1 {
				if cause = context.Cause(ctx); cause != nil {
					return false
				}
			}
			n++
			if f.Holds(e.sys, pps.RunID(r), info.times[r]) {
				ev.Add(r)
			}
			return true
		})
		if cause != nil {
			return nil, fmt.Errorf("core: φ@α scan aborted after %d runs: %w", n, cause)
		}
		return ev, nil
	}
	fk, cacheable := factKey(f)
	if !cacheable {
		return compute()
	}
	return e.events.getCtx(ctx, eventKey{fact: fk, agent: a, kind: eventAtAction, at: action}, compute)
}

// ConstraintProb returns µ_T(φ@α | α), the left-hand side of a
// probabilistic constraint µ_T(φ@α | α) ≥ p (Definition 3.2).
func (e *Engine) ConstraintProb(f logic.Fact, agent, action string) (*big.Rat, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	ev, err := e.factAtAction(context.Background(), f, agent, action)
	if err != nil {
		return nil, err
	}
	cond, ok := e.sys.Cond(ev, info.set)
	if !ok {
		return nil, fmt.Errorf("%w: %s never performs %q", ErrNotProper, agent, action)
	}
	return cond, nil
}

// BeliefAtAction returns the run-indexed random variable (β_i(φ)@α)[r]:
// the agent's degree of belief in φ at the point where it performs α in
// run r, and 0 (by the paper's convention) for runs in which α is not
// performed. The action must be proper.
func (e *Engine) BeliefAtAction(f logic.Fact, agent, action string) ([]*big.Rat, error) {
	a, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	// β depends only on the local state, so compute once per ℓ ∈ L_i[α].
	byLocal := make(map[string]*big.Rat, len(info.locals))
	for _, local := range info.locals {
		bel, belErr := e.Belief(f, agent, local)
		if belErr != nil {
			return nil, belErr
		}
		byLocal[local] = bel
	}
	out := make([]*big.Rat, e.sys.NumRuns())
	for r := range out {
		t := info.times[r]
		if t < 0 {
			out[r] = ratutil.Zero()
			continue
		}
		out[r] = ratutil.Copy(byLocal[e.sys.Local(pps.RunID(r), t, a)])
	}
	return out, nil
}

// ExpectedBelief returns E_µT(β_i(φ)@α | α), the expected degree of the
// agent's belief in φ when it performs α, conditioned on α being performed
// (Definition 6.1). The fold groups by acting local state — β is constant
// on each α@ℓ cell, so E[β@α|α] = Σ_ℓ β_ℓ · µ(α@ℓ) / µ(α) — which prices
// it at one kernel measure per acting state instead of one rational
// multiply-add per run. Exactness makes the regrouping invisible: the
// sum is the same rational either way.
func (e *Engine) ExpectedBelief(f logic.Fact, agent, action string) (*big.Rat, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	total := new(big.Rat)
	for _, local := range info.locals {
		bel, belErr := e.Belief(f, agent, local)
		if belErr != nil {
			return nil, belErr
		}
		total.Add(total, bel.Mul(bel, e.sys.Measure(info.atLocal[local])))
	}
	mAlpha := e.sys.Measure(info.set)
	return total.Quo(total, mAlpha), nil
}

// BeliefThresholdEvent returns the event {r ∈ R_α : (β_i(φ)@α)[r] ≥ p}.
// The acting runs partition by acting local state and β is constant per
// state, so the event is the union of the α@ℓ cells whose belief meets
// the threshold — one comparison per acting state, not per run.
func (e *Engine) BeliefThresholdEvent(f logic.Fact, agent, action string, p *big.Rat) (*runset.Set, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	ev := e.sys.NewSet()
	for _, local := range info.locals {
		bel, belErr := e.Belief(f, agent, local)
		if belErr != nil {
			return nil, belErr
		}
		if ratutil.Geq(bel, p) {
			ev.UnionWith(info.atLocal[local])
		}
	}
	return ev, nil
}

// ThresholdMeasure returns µ_T(β_i(φ)@α ≥ p | α): the probability,
// conditioned on α being performed, that the agent's belief meets the
// threshold p when it acts.
func (e *Engine) ThresholdMeasure(f logic.Fact, agent, action string, p *big.Rat) (*big.Rat, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	ev, err := e.BeliefThresholdEvent(f, agent, action, p)
	if err != nil {
		return nil, err
	}
	cond, ok := e.sys.Cond(ev, info.set)
	if !ok {
		return nil, fmt.Errorf("%w: %s never performs %q", ErrNotProper, agent, action)
	}
	return cond, nil
}

// BeliefRangeAtAction returns the minimum and maximum of β_i(φ) over the
// points at which agent performs the proper action α.
func (e *Engine) BeliefRangeAtAction(f logic.Fact, agent, action string) (min, max *big.Rat, err error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, nil, err
	}
	for _, local := range info.locals {
		bel, belErr := e.Belief(f, agent, local)
		if belErr != nil {
			return nil, nil, belErr
		}
		if min == nil || ratutil.Less(bel, min) {
			min = ratutil.Copy(bel)
		}
		if max == nil || ratutil.Greater(bel, max) {
			max = ratutil.Copy(bel)
		}
	}
	return min, max, nil
}

// BeliefByActionState returns β_i(φ) for each local state in L_i[α],
// keyed by the local state. This is the agent's "information states when
// acting" view used throughout the paper's examples (e.g. Alice's three
// states {Yes, No, silence} in Example 1).
func (e *Engine) BeliefByActionState(f logic.Fact, agent, action string) (map[string]*big.Rat, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*big.Rat, len(info.locals))
	for _, local := range info.locals {
		bel, belErr := e.Belief(f, agent, local)
		if belErr != nil {
			return nil, belErr
		}
		out[local] = bel
	}
	return out, nil
}
