// Package core implements the paper's belief calculus and its main
// results, Sections 3-7: subjective probabilistic beliefs β_i(φ), the
// φ@ℓ_i and φ@α notations, proper actions, local-state independence
// (Definition 4.1), the expected degree of belief (Definition 6.1), and
// machine checkers for Theorem 4.2, Lemma 4.3, Lemma 5.1, Theorem 6.2,
// Theorem 7.1, Corollary 7.2 and Lemma F.1 (the probabilistic Knowledge of
// Preconditions principle).
//
// The central type is Engine, a query layer bound to a single validated
// pps. All quantities are computed exactly over *big.Rat: the engine is an
// exact epistemic-probabilistic model checker, so the paper's numeric
// claims (0.99, 0.991, (p-ε)/(1-ε), ...) are reproduced as rational
// identities rather than floating-point approximations.
package core

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/runset"
)

// Sentinel errors returned (wrapped) by Engine methods.
var (
	// ErrUnknownAgent indicates an agent name that does not exist in the
	// system.
	ErrUnknownAgent = errors.New("core: unknown agent")
	// ErrUnknownLocal indicates a local state that never occurs in the
	// system (β_i is undefined there: µ_T(ℓ_i) would be 0).
	ErrUnknownLocal = errors.New("core: local state does not occur in the system")
	// ErrNotProper indicates an action that is not proper for the agent:
	// either it is never performed, or some run performs it more than once
	// (Section 3.1 requires at least once in T, at most once per run).
	ErrNotProper = errors.New("core: action is not proper")
	// ErrBadPoint indicates a (run, time) pair outside the system.
	ErrBadPoint = errors.New("core: point out of range")
)

// actKey identifies an (agent, action) pair for the engine's caches.
type actKey struct {
	agent  pps.AgentID
	action string
}

// perfInfo caches where an action is performed.
type perfInfo struct {
	// times[r] is the time at which the agent performs the action in run
	// r, or -1 if it does not.
	times []int
	// set is R_α, the event of runs in which the action is performed.
	set *runset.Set
	// multiple is true if some run performs the action more than once
	// (in which case the action is not proper and times records the first
	// occurrence).
	multiple bool
	// locals is L_i[α]: the local states at which the action is ever
	// performed, sorted.
	locals []string
	// atLocal indexes set by the local state at the performance point:
	// atLocal[ℓ] is the event of runs performing the action AT ℓ (the
	// runs of set whose performance-time local state is ℓ). It is the
	// occurrence index the Definition 4.1 scan folds over instead of
	// re-deciding does_i(α) per (state, run); locals are exactly its
	// keys. Shared cache entries: treat the sets as immutable.
	atLocal map[string]*runset.Set
}

// eventKind distinguishes the two cached fact-extension shapes.
type eventKind byte

const (
	// eventAtLocal caches φ@ℓ extensions; at is the local state.
	eventAtLocal eventKind = 'l'
	// eventAtAction caches φ@α extensions; at is the action name.
	eventAtAction eventKind = 'a'
	// eventIndep caches Definition 4.1 reports; at is the action name.
	eventIndep eventKind = 'i'
)

// eventKey identifies a cached fact extension. Facts are keyed by the
// unambiguous rendering of their structural spec (logic.FactSpec.Key),
// under which distinct facts never render equal. Facts containing
// opaque predicates (logic.Atom, LocalPred, EnvPred) have no structural
// spec and are never cached (see factKey).
type eventKey struct {
	fact  string
	agent pps.AgentID
	kind  eventKind
	at    string
}

// beliefKey identifies a cached belief β_i(φ) at a local state.
type beliefKey struct {
	fact  string
	agent pps.AgentID
	local string
}

// Engine answers belief and constraint queries over a single pps. It is
// safe for concurrent use, and it memoizes shared work behind
// singleflight-style caches: the per-(agent, action) performance index,
// the fact extensions φ@ℓ and φ@α, and the beliefs β_i(φ) at each local
// state. Concurrent batches (see internal/query.EvalBatch) therefore
// share work instead of recomputing it, and distinct cache keys are
// computed in parallel rather than serialized behind one lock.
type Engine struct {
	sys *pps.System

	// The memo tables are held by pointer so that engines over
	// SameShape-equal systems can share the measure-independent ones
	// live (see NewSeeded): perf and events are pure functions of the
	// label shape, while beliefs and indeps depend on µ_T and are always
	// per-engine.
	perf    *memo[actKey, *perfInfo]
	events  *memo[eventKey, *runset.Set]
	beliefs *memo[beliefKey, *big.Rat]
	indeps  *memo[eventKey, IndependenceReport]
}

// New returns an Engine bound to sys with fresh memo tables.
func New(sys *pps.System) *Engine {
	return &Engine{
		sys:     sys,
		perf:    &memo[actKey, *perfInfo]{},
		events:  &memo[eventKey, *runset.Set]{},
		beliefs: &memo[beliefKey, *big.Rat]{},
		indeps:  &memo[eventKey, IndependenceReport]{},
	}
}

// NewSeeded returns an Engine bound to sys that shares its
// measure-independent memoization with neighbour — the structure-sharing
// constructor for sweep families, whose assignments differ only in
// adversary weights.
//
// The soundness line, precisely: an entry of the perf table (where an
// action is performed, and at which local states) and of the events
// table (the fact-extension sets φ@ℓ and φ@α) is a pure function of the
// system's LABELS — the per-(run, time) env/locals/acts/envAct tuples
// and the run lengths — because every cacheable fact's Holds reads only
// those labels (opaque predicates are cacheable=false and never enter
// the tables; see factKey). pps.SameShape compares exactly the labels,
// so when it holds, both engines would compute bit-identical entries
// for every shared key, and the two tables are shared LIVE: whichever
// engine scans first, the other inherits the entry, in either order and
// concurrently. The beliefs and indeps tables condition on µ_T — the
// one thing SameShape deliberately ignores — so they are always fresh.
//
// shared reports whether sharing engaged; it is false (and the engine
// is simply New(sys)) when neighbour is nil or the shapes differ, so
// callers can seed opportunistically and count what stuck.
func NewSeeded(sys *pps.System, neighbour *Engine) (e *Engine, shared bool) {
	if neighbour == nil || !pps.SameShape(sys, neighbour.sys) {
		return New(sys), false
	}
	return &Engine{
		sys:     sys,
		perf:    neighbour.perf,
		events:  neighbour.events,
		beliefs: &memo[beliefKey, *big.Rat]{},
		indeps:  &memo[eventKey, IndependenceReport]{},
	}, true
}

// CacheStats reports the engine's memoization sizes: the number of cached
// (agent, action) performance indexes, fact extensions, and beliefs. It
// is exposed for tests, diagnostics and capacity planning.
func (e *Engine) CacheStats() (perf, events, beliefs int) {
	return e.perf.len(), e.events.len(), e.beliefs.len()
}

// factKey renders a fact's cache identity from its structural spec,
// whose Key rendering quotes every parameter so distinct facts never
// collide (display strings can: does_a(b(c) is both Does("a(b","c")
// and Does("a","b(c")). cacheable is false for facts containing opaque
// Go predicates (logic.Atom, LocalPred, EnvPred): they have no
// structural spec and a display name need not identify its closure, so
// those facts are recomputed on every query instead.
func factKey(f logic.Fact) (key string, cacheable bool) {
	spec, ok := logic.SpecOf(f)
	if !ok {
		return "", false
	}
	return spec.Key(), true
}

// System returns the underlying system.
func (e *Engine) System() *pps.System { return e.sys }

// agent resolves an agent name.
func (e *Engine) agent(name string) (pps.AgentID, error) {
	id, ok := e.sys.AgentIndex(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownAgent, name)
	}
	return id, nil
}

// perfFor computes (and caches) where agent a performs action. The cached
// perfInfo is shared and must be treated as immutable by callers.
func (e *Engine) perfFor(a pps.AgentID, action string) *perfInfo {
	info, _ := e.perf.get(actKey{a, action}, func() (*perfInfo, error) {
		info := &perfInfo{
			times:   make([]int, e.sys.NumRuns()),
			set:     e.sys.NewSet(),
			atLocal: make(map[string]*runset.Set),
		}
		for r := 0; r < e.sys.NumRuns(); r++ {
			run := pps.RunID(r)
			info.times[r] = -1
			for t := 0; t < e.sys.RunLen(run); t++ {
				act, ok := e.sys.Action(run, t, a)
				if !ok || act != action {
					continue
				}
				if info.times[r] >= 0 {
					info.multiple = true
					continue
				}
				info.times[r] = t
				info.set.Add(r)
				local := e.sys.Local(run, t, a)
				at, seen := info.atLocal[local]
				if !seen {
					at = e.sys.NewSet()
					info.atLocal[local] = at
				}
				at.Add(r)
			}
		}
		info.locals = make([]string, 0, len(info.atLocal))
		for l := range info.atLocal {
			info.locals = append(info.locals, l)
		}
		sort.Strings(info.locals)
		return info, nil
	})
	return info
}

// IsProper reports whether action is a proper action for agent in the
// system: performed at least once in T, and at most once in every run
// (Section 3.1). A nil error means proper.
func (e *Engine) IsProper(agent, action string) error {
	a, err := e.agent(agent)
	if err != nil {
		return err
	}
	info := e.perfFor(a, action)
	if info.set.IsEmpty() {
		return fmt.Errorf("%w: %s never performs %q", ErrNotProper, agent, action)
	}
	if info.multiple {
		return fmt.Errorf("%w: %s performs %q more than once in some run", ErrNotProper, agent, action)
	}
	return nil
}

// properFor resolves agent and requires the action to be proper.
func (e *Engine) properFor(agent, action string) (pps.AgentID, *perfInfo, error) {
	a, err := e.agent(agent)
	if err != nil {
		return 0, nil, err
	}
	info := e.perfFor(a, action)
	if info.set.IsEmpty() {
		return 0, nil, fmt.Errorf("%w: %s never performs %q", ErrNotProper, agent, action)
	}
	if info.multiple {
		return 0, nil, fmt.Errorf("%w: %s performs %q more than once in some run", ErrNotProper, agent, action)
	}
	return a, info, nil
}

// PerformedSet returns R_α: the event of runs in which agent performs
// action (at least once). The action need not be proper.
func (e *Engine) PerformedSet(agent, action string) (*runset.Set, error) {
	a, err := e.agent(agent)
	if err != nil {
		return nil, err
	}
	return e.perfFor(a, action).set.Clone(), nil
}

// PerformanceTime returns the time at which agent performs action in run
// r, with ok=false if it does not. For improper actions that repeat, the
// first occurrence is reported.
func (e *Engine) PerformanceTime(agent, action string, r pps.RunID) (time int, ok bool, err error) {
	a, err := e.agent(agent)
	if err != nil {
		return 0, false, err
	}
	if r < 0 || int(r) >= e.sys.NumRuns() {
		return 0, false, fmt.Errorf("%w: run %d", ErrBadPoint, r)
	}
	t := e.perfFor(a, action).times[r]
	if t < 0 {
		return 0, false, nil
	}
	return t, true, nil
}

// ActionStates returns L_i[α], the set of local states at which agent ever
// performs action, sorted lexicographically. The action must be proper.
func (e *Engine) ActionStates(agent, action string) ([]string, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), info.locals...), nil
}

// IsDeterministicAction reports whether action is a deterministic action
// for agent in the system: does_i(α) is a function of i's local state,
// i.e. at every local state the agent either performs α in all runs
// through it or in none (Section 4).
func (e *Engine) IsDeterministicAction(agent, action string) (bool, error) {
	a, err := e.agent(agent)
	if err != nil {
		return false, err
	}
	info := e.perfFor(a, action)
	for _, local := range info.locals {
		occ, tm, ok := e.sys.OccursShared(a, local)
		if !ok {
			continue // unreachable: locals come from occurrences
		}
		performedHere := e.sys.NewSet()
		occ.ForEach(func(r int) bool {
			act, actOK := e.sys.Action(pps.RunID(r), tm, a)
			if actOK && act == action {
				performedHere.Add(r)
			}
			return true
		})
		if !performedHere.Equal(occ) && !performedHere.IsEmpty() {
			return false, nil
		}
	}
	return true, nil
}
