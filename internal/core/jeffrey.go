package core

import (
	"fmt"
	"math/big"
	"sort"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Jeffrey conditionalization (Section 6.1). The proof of Theorem 6.2
// partitions the event R_α by the local state at which α is performed and
// applies the law of total probability:
//
//	µ(φ@α | α) = Σ_ℓ µ(α@ℓ | α) · µ(φ@α | α@ℓ)
//
// and, under local-state independence, µ(φ@α | α@ℓ) = µ(φ@ℓ | ℓ) = β_i(φ)
// at ℓ (Lemma B.1), which turns the sum into the expected belief. The
// Decompose query exposes this structure: each cell carries the partition
// weight, the posterior belief, and the conditional constraint value, so
// the theorem's proof can be inspected — and re-verified — numerically on
// any system.

// JeffreyCell is one cell of the partition of R_α by acting local state.
type JeffreyCell struct {
	// Local is the local state ℓ ∈ L_i[α].
	Local string
	// Weight is µ(α@ℓ | α), the cell's share of the acting runs.
	Weight *big.Rat
	// Posterior is β_i(φ) at ℓ, i.e. µ(φ@ℓ | ℓ).
	Posterior *big.Rat
	// CellConstraint is µ(φ@α | α@ℓ), the constraint value within the
	// cell. Under local-state independence it equals Posterior
	// (Lemma B.1); comparing the two localizes independence failures.
	CellConstraint *big.Rat
}

// String renders the cell.
func (c JeffreyCell) String() string {
	return fmt.Sprintf("ℓ=%q w=%s β=%s µ|cell=%s",
		c.Local, c.Weight.RatString(), c.Posterior.RatString(), c.CellConstraint.RatString())
}

// JeffreyDecomposition is the full partition with its aggregates.
type JeffreyDecomposition struct {
	// Cells are ordered by local state.
	Cells []JeffreyCell
	// ExpectedBelief is Σ_ℓ Weight·Posterior = E[β_i(φ)@α | α].
	ExpectedBelief *big.Rat
	// ConstraintProb is µ(φ@α | α) = Σ_ℓ Weight·CellConstraint.
	ConstraintProb *big.Rat
}

// WeightsSumToOne reports whether the partition weights add to exactly 1
// (they must, for a proper action).
func (d JeffreyDecomposition) WeightsSumToOne() bool {
	total := new(big.Rat)
	for _, c := range d.Cells {
		total.Add(total, c.Weight)
	}
	return ratutil.IsOne(total)
}

// LemmaB1Holds reports whether every cell satisfies Lemma B.1
// (CellConstraint = Posterior), which is exactly local-state independence
// restricted to the acting states.
func (d JeffreyDecomposition) LemmaB1Holds() bool {
	for _, c := range d.Cells {
		if !ratutil.Eq(c.CellConstraint, c.Posterior) {
			return false
		}
	}
	return true
}

// Decompose computes the Jeffrey conditionalization of µ(φ@α | α) by the
// acting local states. The action must be proper.
func (e *Engine) Decompose(f logic.Fact, agent, action string) (JeffreyDecomposition, error) {
	a, info, err := e.properFor(agent, action)
	if err != nil {
		return JeffreyDecomposition{}, err
	}

	var d JeffreyDecomposition
	d.ExpectedBelief = new(big.Rat)
	d.ConstraintProb = new(big.Rat)
	locals := append([]string(nil), info.locals...)
	sort.Strings(locals)
	for _, local := range locals {
		occ, tm, ok := e.sys.OccursShared(a, local)
		if !ok {
			continue // unreachable: locals come from occurrences
		}
		// The cell: runs performing α at ℓ.
		cell := e.sys.NewSet()
		factInCell := e.sys.NewSet()
		occ.ForEach(func(r int) bool {
			if info.times[r] != tm {
				return true // α performed elsewhere (or not at all) in r
			}
			cell.Add(r)
			if f.Holds(e.sys, pps.RunID(r), tm) {
				factInCell.Add(r)
			}
			return true
		})
		if cell.IsEmpty() {
			continue
		}
		// Fused kernel conditionals: µ(α@ℓ|α) and µ(φ@α|α@ℓ) as integer
		// numerator ratios, one reduction each.
		weight, okW := e.sys.Cond(cell, info.set)
		if !okW {
			continue // unreachable: properFor guarantees µ(α) > 0
		}
		posterior, berr := e.Belief(f, agent, local)
		if berr != nil {
			return JeffreyDecomposition{}, berr
		}
		cellConstraint, okC := e.sys.Cond(factInCell, cell)
		if !okC {
			continue // unreachable: cell is nonempty
		}
		d.Cells = append(d.Cells, JeffreyCell{
			Local:          local,
			Weight:         weight,
			Posterior:      posterior,
			CellConstraint: cellConstraint,
		})
		d.ExpectedBelief.Add(d.ExpectedBelief, ratutil.Mul(weight, posterior))
		d.ConstraintProb.Add(d.ConstraintProb, ratutil.Mul(weight, cellConstraint))
	}
	return d, nil
}
