package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pak/internal/logic"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// fsEngine builds an engine over Example 1's firing squad.
func fsEngine(t testing.TB) *Engine {
	t.Helper()
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	return New(sys)
}

// TestCachedResultsAreIsolated mutates everything the engine hands out
// and re-queries: cache entries must be unaffected.
func TestCachedResultsAreIsolated(t *testing.T) {
	e := fsEngine(t)
	phi := logic.And(logic.Does("Alice", "fire"), logic.Does("Bob", "fire"))

	ev, err := e.FactAtAction(phi, "Alice", "fire")
	if err != nil {
		t.Fatal(err)
	}
	want := ev.Clone()
	ev.Complement().ForEach(func(r int) bool { ev.Add(r); return true }) // wreck the returned set
	again, err := e.FactAtAction(phi, "Alice", "fire")
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(want) {
		t.Error("mutating a returned event corrupted the cache")
	}

	local := "t2|go=1,sent,recv=Yes"
	bel, err := e.Belief(phi, "Alice", local)
	if err != nil {
		t.Fatal(err)
	}
	wantBel := ratutil.Copy(bel)
	bel.SetInt64(42) // wreck the returned rational
	againBel, err := e.Belief(phi, "Alice", local)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(againBel, wantBel) {
		t.Errorf("mutating a returned belief corrupted the cache: %s", againBel.RatString())
	}

	rep, err := e.LocalStateIndependence(logic.LocalIs("Bob", "nope"), "Alice", "fire")
	if err == nil {
		// The fact never holds; independence may or may not fail, but the
		// returned violations slice must be private.
		rep.Violations = append(rep.Violations, IndependenceViolation{Local: "junk"})
		again, aerr := e.LocalStateIndependence(logic.LocalIs("Bob", "nope"), "Alice", "fire")
		if aerr != nil {
			t.Fatal(aerr)
		}
		for _, v := range again.Violations {
			if v.Local == "junk" {
				t.Error("appending to returned violations corrupted the cache")
			}
		}
	}
}

// TestEngineConcurrentQueries hammers one engine from many goroutines
// over overlapping keys; under -race this is the engine's thread-safety
// proof at the core layer.
func TestEngineConcurrentQueries(t *testing.T) {
	e := fsEngine(t)
	phi := logic.And(logic.Does("Alice", "fire"), logic.Does("Bob", "fire"))
	want, err := e.ConstraintProb(phi, "Alice", "fire")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				mu, cerr := e.ConstraintProb(phi, "Alice", "fire")
				if cerr != nil {
					errs <- cerr
					return
				}
				if !ratutil.Eq(mu, want) {
					errs <- fmt.Errorf("concurrent µ = %s, want %s", mu.RatString(), want.RatString())
					return
				}
				if _, cerr = e.ExpectedBelief(phi, "Alice", "fire"); cerr != nil {
					errs <- cerr
					return
				}
				if _, cerr = e.LocalStateIndependence(phi, "Alice", "fire"); cerr != nil {
					errs <- cerr
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	perf, events, beliefs := e.CacheStats()
	if perf == 0 || events == 0 || beliefs == 0 {
		t.Errorf("caches not warmed: perf=%d events=%d beliefs=%d", perf, events, beliefs)
	}
}

// TestFactKeyUnambiguous pins the cache-key contract: facts whose
// display strings collide (unquoted names) must still get distinct
// keys, and opaque predicates must be uncacheable.
func TestFactKeyUnambiguous(t *testing.T) {
	f1 := logic.Does("a(b", "c")
	f2 := logic.Does("a", "b(c")
	if f1.String() != f2.String() {
		t.Skipf("display strings no longer collide (%q vs %q); key test moot", f1, f2)
	}
	k1, ok1 := factKey(f1)
	k2, ok2 := factKey(f2)
	if !ok1 || !ok2 {
		t.Fatalf("structural facts must be cacheable (ok1=%v ok2=%v)", ok1, ok2)
	}
	if k1 == k2 {
		t.Errorf("distinct facts share cache key %q", k1)
	}
	if _, ok := factKey(logic.Atom("p", func(*pps.System, pps.RunID, int) bool { return true })); ok {
		t.Error("opaque Atom reported cacheable")
	}
}

// TestMemoDoesNotCacheContextAborts: a compute aborted by a context
// must not poison its key — the entry is evicted and the next get
// recomputes. Deterministic errors stay cached as before.
func TestMemoDoesNotCacheContextAborts(t *testing.T) {
	var m memo[string, int]
	calls := 0
	compute := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, fmt.Errorf("scan aborted: %w", context.DeadlineExceeded)
		}
		return 42, nil
	}
	if _, err := m.get("k", compute); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first get err = %v", err)
	}
	if m.len() != 0 {
		t.Fatalf("aborted entry retained: len = %d", m.len())
	}
	v, err := m.get("k", compute)
	if err != nil || v != 42 {
		t.Fatalf("second get = (%d, %v), want (42, nil)", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times", calls)
	}
	// Deterministic errors keep the historical contract: cached forever.
	boom := errors.New("boom")
	first := true
	bad := func() (int, error) {
		if first {
			first = false
			return 0, boom
		}
		return 0, errors.New("recomputed; deterministic errors must stay cached")
	}
	if _, err := m.get("bad", bad); !errors.Is(err, boom) {
		t.Fatalf("bad first get err = %v", err)
	}
	if _, err := m.get("bad", bad); !errors.Is(err, boom) {
		t.Fatalf("bad second get err = %v (entry was evicted)", err)
	}
}
