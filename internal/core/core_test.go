package core

import (
	"errors"
	"math/big"
	"strings"
	"testing"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// figure1 builds the paper's Figure 1 system: one agent i, one initial
// state g0, and a mixed action step performing α or α' with probability
// 1/2 each. It is the paper's counterexample to both the sufficiency claim
// (Section 4) and the expectation identity (Section 6) in the absence of
// local-state independence.
func figure1(t *testing.T) *Engine {
	t.Helper()
	b := pps.NewBuilder("i")
	g0 := b.Init(ratutil.One(), "e0", "g0")
	b.Child(g0, pps.Step{Pr: ratutil.R(1, 2), Acts: []string{"alpha"}, Env: "e1", Locals: []string{"g1"}})
	b.Child(g0, pps.Step{Pr: ratutil.R(1, 2), Acts: []string{"alpha'"}, Env: "e1", Locals: []string{"g1"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("figure1 build: %v", err)
	}
	return New(sys)
}

// that builds the paper's Figure 2 system T-hat(p, ε) from the proof of
// Theorem 5.2. Two agents i and j; j's bit is 1 with probability p. When
// bit=0, j sends message m; when bit=1 it sends m with probability 1-ε/p
// and m' with probability ε/p. Agent i then performs α unconditionally at
// time 1.
func that(t *testing.T, p, eps *big.Rat) *Engine {
	t.Helper()
	sys, err := buildThat(p, eps)
	if err != nil {
		t.Fatalf("T-hat build: %v", err)
	}
	return New(sys)
}

func buildThat(p, eps *big.Rat) (*pps.System, error) {
	b := pps.NewBuilder("i", "j")
	s0 := b.Init(ratutil.OneMinus(p), "env", "i0", "j0:bit=0")
	s1 := b.Init(p, "env", "i0", "j0:bit=1")
	// bit=0: j sends m deterministically.
	n0 := b.Child(s0, pps.Step{Pr: ratutil.One(), Acts: []string{"noop", "send-m"},
		Env: "env", Locals: []string{"i1:recv=m", "j1:bit=0"}})
	b.Child(n0, pps.Step{Pr: ratutil.One(), Acts: []string{"alpha", "noop"},
		Env: "env", Locals: []string{"i2", "j2:bit=0"}})
	// bit=1: j sends m w.p. 1-ε/p, m' w.p. ε/p.
	epsOverP := ratutil.Div(eps, p)
	n1 := b.Child(s1, pps.Step{Pr: ratutil.OneMinus(epsOverP), Acts: []string{"noop", "send-m"},
		Env: "env", Locals: []string{"i1:recv=m", "j1:bit=1"}})
	b.Child(n1, pps.Step{Pr: ratutil.One(), Acts: []string{"alpha", "noop"},
		Env: "env", Locals: []string{"i2", "j2:bit=1"}})
	n2 := b.Child(s1, pps.Step{Pr: epsOverP, Acts: []string{"noop", "send-m'"},
		Env: "env", Locals: []string{"i1:recv=m'", "j1:bit=1"}})
	b.Child(n2, pps.Step{Pr: ratutil.One(), Acts: []string{"alpha", "noop"},
		Env: "env", Locals: []string{"i2b", "j2b:bit=1"}})
	return b.Build()
}

// bitIsOne is the fact φ = "bit = 1", a fact about runs expressed through
// j's local state.
func bitIsOne() logic.Fact { return logic.LocalContains("j", "bit=1") }

func TestProperAction(t *testing.T) {
	e := figure1(t)
	if err := e.IsProper("i", "alpha"); err != nil {
		t.Errorf("alpha should be proper: %v", err)
	}
	if err := e.IsProper("i", "never"); !errors.Is(err, ErrNotProper) {
		t.Errorf("never-performed action: err = %v, want ErrNotProper", err)
	}
	if err := e.IsProper("nobody", "alpha"); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("unknown agent: err = %v, want ErrUnknownAgent", err)
	}
}

func TestImproperRepeatedAction(t *testing.T) {
	// A run in which i performs α twice: α is not proper.
	b := pps.NewBuilder("i")
	g := b.Init(ratutil.One(), "e", "l0")
	c := b.Child(g, pps.Step{Pr: ratutil.One(), Acts: []string{"alpha"}, Env: "e", Locals: []string{"l1"}})
	b.Child(c, pps.Step{Pr: ratutil.One(), Acts: []string{"alpha"}, Env: "e", Locals: []string{"l2"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	e := New(sys)
	if err := e.IsProper("i", "alpha"); !errors.Is(err, ErrNotProper) {
		t.Fatalf("repeated action: err = %v, want ErrNotProper", err)
	}
	if _, err := e.ConstraintProb(logic.True(), "i", "alpha"); !errors.Is(err, ErrNotProper) {
		t.Fatalf("ConstraintProb on improper action: err = %v, want ErrNotProper", err)
	}
}

func TestPerformedSetAndTime(t *testing.T) {
	e := figure1(t)
	set, err := e.PerformedSet("i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if set.Count() != 1 || !set.Contains(0) {
		t.Fatalf("PerformedSet = %v", set)
	}
	tm, ok, err := e.PerformanceTime("i", "alpha", 0)
	if err != nil || !ok || tm != 0 {
		t.Fatalf("PerformanceTime run0 = %d,%v,%v", tm, ok, err)
	}
	_, ok, err = e.PerformanceTime("i", "alpha", 1)
	if err != nil || ok {
		t.Fatalf("PerformanceTime run1 should be absent, got ok=%v err=%v", ok, err)
	}
	if _, _, err := e.PerformanceTime("i", "alpha", 99); !errors.Is(err, ErrBadPoint) {
		t.Fatalf("out-of-range run: err = %v", err)
	}
}

func TestActionStates(t *testing.T) {
	e := that(t, ratutil.R(9, 10), ratutil.R(1, 10))
	states, err := e.ActionStates("i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"i1:recv=m", "i1:recv=m'"}
	if len(states) != 2 || states[0] != want[0] || states[1] != want[1] {
		t.Fatalf("ActionStates = %v, want %v", states, want)
	}
}

func TestBeliefFigure1(t *testing.T) {
	// Paper, Section 4: with ψ = ¬does_i(α), β_i(ψ) = 1/2 when i performs
	// α, while µ(ψ@α|α) = 0.
	e := figure1(t)
	psi := logic.Not(logic.Does("i", "alpha"))
	bel, err := e.Belief(psi, "i", "g0")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(bel, ratutil.R(1, 2)) {
		t.Fatalf("β_i(ψ) at g0 = %v, want 1/2", bel)
	}
	mu, err := e.ConstraintProb(psi, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsZero(mu) {
		t.Fatalf("µ(ψ@α|α) = %v, want 0", mu)
	}
}

func TestBeliefUnknowns(t *testing.T) {
	e := figure1(t)
	if _, err := e.Belief(logic.True(), "i", "no-such-state"); !errors.Is(err, ErrUnknownLocal) {
		t.Errorf("unknown local: err = %v", err)
	}
	if _, err := e.Belief(logic.True(), "nobody", "g0"); !errors.Is(err, ErrUnknownAgent) {
		t.Errorf("unknown agent: err = %v", err)
	}
	if _, err := e.BeliefAtPoint(logic.True(), "i", 0, 99); !errors.Is(err, ErrBadPoint) {
		t.Errorf("bad point: err = %v", err)
	}
}

func TestBeliefAtPoint(t *testing.T) {
	e := figure1(t)
	bel, err := e.BeliefAtPoint(logic.Not(logic.Does("i", "alpha")), "i", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(bel, ratutil.R(1, 2)) {
		t.Fatalf("belief at point (1,0) = %v, want 1/2", bel)
	}
}

func TestBeliefAtActionConvention(t *testing.T) {
	// (β_i(φ)@α)[r] = 0 by convention for runs where α is not performed.
	e := figure1(t)
	beliefs, err := e.BeliefAtAction(logic.True(), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(beliefs[0]) {
		t.Errorf("belief in run 0 = %v, want 1", beliefs[0])
	}
	if !ratutil.IsZero(beliefs[1]) {
		t.Errorf("belief in run 1 = %v, want 0 (convention)", beliefs[1])
	}
}

func TestThatBeliefs(t *testing.T) {
	// Paper, proof of Theorem 5.2: with p = 9/10, ε = 1/10,
	// β_i(φ)@α = (p-ε)/(1-ε) = 8/9 in runs r and r', and 1 in run r''.
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	e := that(t, p, eps)
	phi := bitIsOne()
	byState, err := e.BeliefByActionState(phi, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	wantShared := ratutil.Div(ratutil.Sub(p, eps), ratutil.OneMinus(eps)) // 8/9
	if got := byState["i1:recv=m"]; !ratutil.Eq(got, wantShared) {
		t.Errorf("β at recv=m = %v, want %v", got, wantShared)
	}
	if got := byState["i1:recv=m'"]; !ratutil.IsOne(got) {
		t.Errorf("β at recv=m' = %v, want 1", got)
	}

	mu, err := e.ConstraintProb(phi, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(mu, p) {
		t.Errorf("µ(φ@α|α) = %v, want %v", mu, p)
	}

	// µ(β ≥ p | α) = ε: the threshold is met only in run r''.
	tm, err := e.ThresholdMeasure(phi, "i", "alpha", p)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(tm, eps) {
		t.Errorf("µ(β≥p|α) = %v, want %v", tm, eps)
	}
}

func TestThatExpectationTheorem(t *testing.T) {
	// Theorem 6.2 on T-hat: E[β_i(φ)@α | α] = µ(φ@α | α) = p exactly.
	for _, tc := range []struct{ p, eps *big.Rat }{
		{ratutil.R(9, 10), ratutil.R(1, 10)},
		{ratutil.R(99, 100), ratutil.R(1, 100)},
		{ratutil.R(1, 2), ratutil.R(1, 10)},
		{ratutil.R(95, 100), ratutil.R(3, 100)},
	} {
		e := that(t, tc.p, tc.eps)
		rep, err := e.CheckExpectation(bitIsOne(), "i", "alpha")
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Independent {
			t.Errorf("p=%v ε=%v: expected independence (α deterministic)", tc.p, tc.eps)
		}
		if !rep.Equal() {
			t.Errorf("p=%v ε=%v: µ=%v != E[β]=%v", tc.p, tc.eps,
				rep.ConstraintProb, rep.ExpectedBelief)
		}
		if !ratutil.Eq(rep.ConstraintProb, tc.p) {
			t.Errorf("µ = %v, want %v", rep.ConstraintProb, tc.p)
		}
		if !rep.Holds() {
			t.Errorf("Theorem 6.2 violated: %v", rep)
		}
	}
}

func TestFigure1ExpectationCounterexample(t *testing.T) {
	// Paper, Section 6: with φ = does_i(α), µ(φ@α|α) = 1 but E[β] = 1/2.
	// The identity fails, and the independence hypothesis fails too —
	// exactly as the paper argues.
	e := figure1(t)
	phi := logic.Does("i", "alpha")
	rep, err := e.CheckExpectation(phi, "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(rep.ConstraintProb) {
		t.Errorf("µ(φ@α|α) = %v, want 1", rep.ConstraintProb)
	}
	if !ratutil.Eq(rep.ExpectedBelief, ratutil.R(1, 2)) {
		t.Errorf("E[β] = %v, want 1/2", rep.ExpectedBelief)
	}
	if rep.Independent {
		t.Error("φ should NOT be local-state independent of α in Figure 1")
	}
	if rep.Equal() {
		t.Error("the two sides should differ in Figure 1")
	}
	if !rep.Holds() {
		t.Error("theorem trivially holds when hypothesis fails")
	}
}

func TestFigure1SufficiencyCounterexample(t *testing.T) {
	// Paper, Section 4: ψ = ¬does_i(α); β_i(ψ) = 1/2 ≥ 1/2 whenever α is
	// performed, yet µ(ψ@α|α) = 0 < 1/2. Sufficiency fails without
	// independence.
	e := figure1(t)
	psi := logic.Not(logic.Does("i", "alpha"))
	rep, err := e.CheckSufficiency(psi, "i", "alpha", ratutil.R(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PremiseMet {
		t.Errorf("premise should be met: minβ = %v", rep.MinBelief)
	}
	if rep.ConstraintMet {
		t.Errorf("constraint should fail: µ = %v", rep.ConstraintProb)
	}
	if rep.Independent {
		t.Error("ψ should not be independent of α")
	}
	if !rep.Holds() {
		t.Error("Theorem 4.2 is not contradicted (hypothesis fails)")
	}
	if !strings.Contains(rep.String(), "holds=true") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestSufficiencyOnThat(t *testing.T) {
	// On T-hat with the independence hypothesis met, acting only with
	// belief ≥ (p-ε)/(1-ε) guarantees µ ≥ (p-ε)/(1-ε).
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	e := that(t, p, eps)
	minBelief := ratutil.Div(ratutil.Sub(p, eps), ratutil.OneMinus(eps))
	rep, err := e.CheckSufficiency(bitIsOne(), "i", "alpha", minBelief)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Independent || !rep.PremiseMet || !rep.ConstraintMet || !rep.Holds() {
		t.Fatalf("sufficiency should hold on T-hat: %v", rep)
	}
}

func TestNecessityLemma(t *testing.T) {
	// Lemma 5.1 on T-hat: µ = p, so some performance point has β ≥ p.
	// The witness is the revealing state recv=m'.
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	e := that(t, p, eps)
	rep, err := e.CheckNecessity(bitIsOne(), "i", "alpha", p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds() {
		t.Fatalf("Lemma 5.1 violated: %v", rep)
	}
	if rep.Witness != "i1:recv=m'" {
		t.Errorf("witness = %q, want i1:recv=m'", rep.Witness)
	}
	if !ratutil.IsOne(rep.MaxBelief) {
		t.Errorf("max belief = %v, want 1", rep.MaxBelief)
	}
}

func TestPAKTheorem(t *testing.T) {
	// Theorem 7.1 / Corollary 7.2 on T-hat(1-ε², ·): the premise
	// µ ≥ 1-ε² holds by construction with p = 1-ε².
	eps := ratutil.R(1, 10)
	p := ratutil.OneMinus(ratutil.Mul(eps, eps)) // 99/100
	e := that(t, p, ratutil.R(1, 100))
	rep, err := e.CheckPAKSquare(bitIsOne(), "i", "alpha", eps)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PremiseMet() {
		t.Fatalf("premise should hold: µ = %v, threshold = %v", rep.ConstraintProb, rep.Threshold)
	}
	if !rep.ConclusionMet() {
		t.Fatalf("conclusion should hold: µ(β≥%v|α) = %v, bound %v",
			rep.BeliefLevel, rep.BeliefMeasure, rep.Bound)
	}
	if !rep.Holds() {
		t.Fatalf("Corollary 7.2 violated: %v", rep)
	}
}

func TestPAKThresholdCanBeRarelyMet(t *testing.T) {
	// Theorem 5.2: on T-hat(p, ε), µ(β ≥ p | α) = ε can be made
	// arbitrarily small while µ = p stays fixed. PAK still holds because
	// the *relaxed* threshold 1-ε' is met with high probability.
	p := ratutil.R(9, 10)
	for _, eps := range []*big.Rat{ratutil.R(1, 10), ratutil.R(1, 100), ratutil.R(1, 1000)} {
		e := that(t, p, eps)
		tm, err := e.ThresholdMeasure(bitIsOne(), "i", "alpha", p)
		if err != nil {
			t.Fatal(err)
		}
		if !ratutil.Eq(tm, eps) {
			t.Errorf("ε=%v: µ(β≥p|α) = %v, want %v", eps, tm, eps)
		}
	}
}

func TestKoPLimit(t *testing.T) {
	// Degenerate T-hat with ε = 0 is not allowed (edge probability 0), so
	// build a system in which φ surely holds when α is performed: i
	// observes the bit perfectly before acting.
	b := pps.NewBuilder("i", "j")
	s0 := b.Init(ratutil.R(1, 2), "env", "i0:see=0", "j0:bit=0")
	s1 := b.Init(ratutil.R(1, 2), "env", "i0:see=1", "j0:bit=1")
	// i performs α only when it saw bit=1.
	b.Child(s0, pps.Step{Pr: ratutil.One(), Acts: []string{"noop", "noop"},
		Env: "env", Locals: []string{"i1:see=0", "j1:bit=0"}})
	b.Child(s1, pps.Step{Pr: ratutil.One(), Acts: []string{"alpha", "noop"},
		Env: "env", Locals: []string{"i1:see=1", "j1:bit=1"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	rep, err := e.CheckKoPLimit(bitIsOne(), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(rep.ConstraintProb) {
		t.Fatalf("µ = %v, want 1", rep.ConstraintProb)
	}
	if !ratutil.IsOne(rep.MinBelief) {
		t.Fatalf("min belief = %v, want 1", rep.MinBelief)
	}
	if !rep.AlwaysKnows {
		t.Fatal("agent should know φ at every performance point")
	}
	if !rep.Holds() {
		t.Fatalf("Lemma F.1 violated: %v", rep)
	}
}

func TestKnows(t *testing.T) {
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	e := that(t, p, eps)
	phi := bitIsOne()
	// Run 2 (r'') is the revealing run: i received m', so it knows bit=1.
	knows, err := e.Knows(phi, "i", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !knows {
		t.Error("i should know bit=1 after receiving m'")
	}
	// Run 1 (r') has bit=1 but i received m, shared with the bit=0 run.
	knows, err = e.Knows(phi, "i", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if knows {
		t.Error("i should not know bit=1 after receiving m")
	}
	// Knowledge coincides with belief 1 in a pps.
	bel, err := e.BeliefAtPoint(phi, "i", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.IsOne(bel) {
		t.Errorf("belief at revealing point = %v, want 1", bel)
	}
}

func TestIsDeterministicAction(t *testing.T) {
	e1 := figure1(t)
	det, err := e1.IsDeterministicAction("i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("Figure 1's alpha is a mixed action, not deterministic")
	}
	e2 := that(t, ratutil.R(9, 10), ratutil.R(1, 10))
	det, err = e2.IsDeterministicAction("i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("T-hat's alpha is performed unconditionally, hence deterministic")
	}
}

func TestExplainIndependence(t *testing.T) {
	// Figure 1: neither sufficient condition of Lemma 4.3 holds, and
	// independence indeed fails — consistent with the lemma.
	e1 := figure1(t)
	w1, err := e1.ExplainIndependence(logic.Not(logic.Does("i", "alpha")), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if w1.Deterministic || w1.PastBased || w1.Independent {
		t.Errorf("Figure 1 witness = %+v, want all false", w1)
	}
	if !w1.Lemma43Consistent() {
		t.Error("Lemma 4.3 consistency must hold vacuously")
	}
	// T-hat: alpha deterministic AND fact past-based; independence holds.
	e2 := that(t, ratutil.R(9, 10), ratutil.R(1, 10))
	w2, err := e2.ExplainIndependence(bitIsOne(), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Deterministic || !w2.PastBased || !w2.Independent {
		t.Errorf("T-hat witness = %+v, want all true", w2)
	}
	if !w2.Lemma43Consistent() {
		t.Error("Lemma 4.3 violated on T-hat")
	}
}

func TestIndependenceViolationDetails(t *testing.T) {
	e := figure1(t)
	rep, err := e.LocalStateIndependence(logic.Not(logic.Does("i", "alpha")), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Independent || len(rep.Violations) != 1 {
		t.Fatalf("report = %v", rep)
	}
	v := rep.Violations[0]
	if v.Local != "g0" {
		t.Errorf("violation local = %q, want g0", v.Local)
	}
	// µ(ψ@g0|g0)·µ(α@g0|g0) = 1/2 · 1/2 = 1/4, while µ([ψ∧α]@g0|g0) = 0.
	if !ratutil.Eq(v.Product, ratutil.R(1, 4)) {
		t.Errorf("product = %v, want 1/4", v.Product)
	}
	if !ratutil.IsZero(v.Joint) {
		t.Errorf("joint = %v, want 0", v.Joint)
	}
	if !strings.Contains(rep.String(), "NOT local-state independent") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestBeliefRangeAtAction(t *testing.T) {
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	e := that(t, p, eps)
	min, max, err := e.BeliefRangeAtAction(bitIsOne(), "i", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !ratutil.Eq(min, ratutil.R(8, 9)) {
		t.Errorf("min = %v, want 8/9", min)
	}
	if !ratutil.IsOne(max) {
		t.Errorf("max = %v, want 1", max)
	}
}

func TestBeliefThresholdEvent(t *testing.T) {
	p, eps := ratutil.R(9, 10), ratutil.R(1, 10)
	e := that(t, p, eps)
	ev, err := e.BeliefThresholdEvent(bitIsOne(), "i", "alpha", p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Count() != 1 || !ev.Contains(2) {
		t.Fatalf("threshold event = %v, want {2}", ev)
	}
}

func TestReportStrings(t *testing.T) {
	e := that(t, ratutil.R(9, 10), ratutil.R(1, 10))
	phi := bitIsOne()
	exp, _ := e.CheckExpectation(phi, "i", "alpha")
	nec, _ := e.CheckNecessity(phi, "i", "alpha", ratutil.R(1, 2))
	pak, _ := e.CheckPAKSquare(phi, "i", "alpha", ratutil.R(1, 10))
	kop, _ := e.CheckKoPLimit(phi, "i", "alpha")
	for _, s := range []string{exp.String(), nec.String(), pak.String(), kop.String()} {
		if !strings.Contains(s, "holds=") {
			t.Errorf("report string %q missing holds=", s)
		}
	}
}

func TestEngineSystemAccessor(t *testing.T) {
	e := figure1(t)
	if e.System() == nil || e.System().NumRuns() != 2 {
		t.Fatal("System() accessor wrong")
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The engine caches per-action data; exercise it from multiple
	// goroutines to catch races (run with -race in CI).
	e := that(t, ratutil.R(9, 10), ratutil.R(1, 10))
	phi := bitIsOne()
	done := make(chan error)
	for k := 0; k < 8; k++ {
		go func() {
			_, err := e.CheckExpectation(phi, "i", "alpha")
			done <- err
		}()
	}
	for k := 0; k < 8; k++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
