package core

import (
	"context"
	"fmt"
	"math/big"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Local-state independence (Definition 4.1): a fact φ is local-state
// independent of a proper action α for agent i if, for every local state
// ℓ_i,
//
//	µ_T(φ@ℓ | ℓ) · µ_T(α@ℓ | ℓ) = µ_T([φ∧α]@ℓ | ℓ).
//
// Intuitively the probability that φ holds when i performs α must not
// depend on which runs through ℓ happen to perform α. It is the hypothesis
// of Theorems 4.2, 6.2 and 7.1, and fails exactly in mixed-action
// pathologies such as the paper's Figure 1.

// IndependenceViolation records one local state at which Definition 4.1
// fails, with both sides of the defining equation.
type IndependenceViolation struct {
	// Local is the offending local state ℓ.
	Local string
	// Product is µ(φ@ℓ|ℓ) · µ(α@ℓ|ℓ).
	Product *big.Rat
	// Joint is µ([φ∧α]@ℓ|ℓ).
	Joint *big.Rat
}

// String renders the violation for reports.
func (v IndependenceViolation) String() string {
	return fmt.Sprintf("at ℓ=%q: µ(φ@ℓ|ℓ)·µ(α@ℓ|ℓ) = %s ≠ %s = µ([φ∧α]@ℓ|ℓ)",
		v.Local, v.Product.RatString(), v.Joint.RatString())
}

// IndependenceReport is the result of checking Definition 4.1.
type IndependenceReport struct {
	// Independent is true when the defining equation holds at every local
	// state of the agent.
	Independent bool
	// Violations lists the local states at which it fails.
	Violations []IndependenceViolation
}

// String summarizes the report.
func (r IndependenceReport) String() string {
	if r.Independent {
		return "local-state independent"
	}
	return fmt.Sprintf("NOT local-state independent (%d violations; first: %s)",
		len(r.Violations), r.Violations[0])
}

// LocalStateIndependence checks Definition 4.1 for the given fact, agent
// and proper action, examining every local state of the agent that occurs
// in the system. (States at which α is never performed satisfy the
// equation trivially, both sides being 0, but are checked anyway.) The
// scan touches every local state, so it is the costliest shared step of
// the theorem checkers; reports are memoized per (φ, agent, α) and the
// returned copy is safe to retain.
func (e *Engine) LocalStateIndependence(f logic.Fact, agent, action string) (IndependenceReport, error) {
	return e.LocalStateIndependenceCtx(context.Background(), f, agent, action)
}

// indepCtxInterval is the coarse cancellation granularity of the
// engine's deep scans — the independence scan (once per this many local
// states) and the fact-extension scans in belief.go (once per this many
// runs): the check's cost is invisible on small systems while a deep
// scan inside one envelope assignment can still be cut at the deadline
// within a bounded amount of extra work (the ROADMAP's "finer
// cancellation", first slice).
const indepCtxInterval = 64

// LocalStateIndependenceCtx is LocalStateIndependence bound to a
// context: the Definition 4.1 scan checks ctx every indepCtxInterval
// local states and aborts with the context's cause once it is done. An
// aborted scan is never memoized (the memo evicts context aborts), so a
// later caller with a live context recomputes the report rather than
// inheriting another request's deadline.
func (e *Engine) LocalStateIndependenceCtx(ctx context.Context, f logic.Fact, agent, action string) (IndependenceReport, error) {
	a, _, err := e.properFor(agent, action)
	if err != nil {
		return IndependenceReport{}, err
	}
	var report IndependenceReport
	if fk, cacheable := factKey(f); cacheable {
		key := eventKey{fact: fk, agent: a, kind: eventIndep, at: action}
		report, err = e.indeps.getCtx(ctx, key, func() (IndependenceReport, error) {
			return e.localStateIndependence(ctx, f, a, action)
		})
	} else {
		report, err = e.localStateIndependence(ctx, f, a, action)
	}
	if err != nil {
		return IndependenceReport{}, err
	}
	// Hand out a copy of the violations slice so callers may append or
	// sort without corrupting the cache.
	report.Violations = append([]IndependenceViolation(nil), report.Violations...)
	return report, nil
}

// localStateIndependence performs the actual Definition 4.1 scan,
// incrementally over precomputed indexes rather than O(states × runs)
// per call:
//
//   - α@ℓ comes straight from the perf index's atLocal occurrence map
//     (one performance scan per (agent, action), ever) — local states at
//     which α is never performed satisfy the equation with both sides
//     exactly 0 and are settled without evaluating the fact at all;
//   - φ@ℓ is the memoized fact-extension scan (factAtLocal), shared with
//     the belief queries and — through seeded engines (NewSeeded) — with
//     neighbouring sweep assignments;
//   - [φ∧α]@ℓ is a bitset intersection of the two.
//
// Violation order (LocalStates' sorted enumeration) and the
// every-indepCtxInterval cancellation checks are preserved exactly.
func (e *Engine) localStateIndependence(ctx context.Context, f logic.Fact, a pps.AgentID, action string) (IndependenceReport, error) {
	report := IndependenceReport{Independent: true}
	info := e.perfFor(a, action)
	agent := e.sys.AgentName(a)
	for n, local := range e.sys.LocalStates(a) {
		if n%indepCtxInterval == indepCtxInterval-1 {
			if cause := context.Cause(ctx); cause != nil {
				return IndependenceReport{}, fmt.Errorf("core: independence scan aborted after %d local states: %w", n, cause)
			}
		}
		actAt := info.atLocal[local]
		if actAt == nil {
			// α is never performed at ℓ: µ(α@ℓ|ℓ) and µ([φ∧α]@ℓ|ℓ) are
			// both exactly 0, so Definition 4.1 holds at ℓ trivially.
			continue
		}
		occ, _, ok := e.sys.OccursShared(a, local)
		if !ok {
			continue // unreachable: LocalStates only lists occurring states
		}
		factAt, err := e.factAtLocal(ctx, f, a, agent, local) // φ@ℓ (shared cache entry)
		if err != nil {
			return IndependenceReport{}, err
		}
		// Both sides via fused kernel conditionals: no [φ∧α]@ℓ intermediate
		// set, integer numerator sums, one reduction per quantity.
		pFact, okF := e.sys.Cond(factAt, occ)
		pAct, okA := e.sys.Cond(actAt, occ)
		pJoint, okJ := e.sys.CondIntersect(factAt, actAt, occ)
		if !okF || !okA || !okJ {
			continue // unreachable in a valid pps: µ(ℓ) > 0
		}
		product := ratutil.Mul(pFact, pAct)
		if !ratutil.Eq(product, pJoint) {
			report.Independent = false
			report.Violations = append(report.Violations, IndependenceViolation{
				Local:   local,
				Product: product,
				Joint:   pJoint,
			})
		}
	}
	return report, nil
}

// IndependenceWitness classifies why local-state independence holds, per
// the sufficient conditions of Lemma 4.3.
type IndependenceWitness struct {
	// Deterministic is true when the action is deterministic for the agent
	// (condition (a) of Lemma 4.3).
	Deterministic bool
	// PastBased is true when the fact is past-based in the system
	// (condition (b) of Lemma 4.3).
	PastBased bool
	// Independent is the directly checked Definition 4.1.
	Independent bool
}

// Lemma43Consistent reports whether the witness is consistent with
// Lemma 4.3: if either sufficient condition holds, independence must hold.
func (w IndependenceWitness) Lemma43Consistent() bool {
	if w.Deterministic || w.PastBased {
		return w.Independent
	}
	return true // lemma is silent when neither condition holds
}

// ExplainIndependence evaluates both sufficient conditions of Lemma 4.3
// alongside the direct Definition 4.1 check.
func (e *Engine) ExplainIndependence(f logic.Fact, agent, action string) (IndependenceWitness, error) {
	return e.ExplainIndependenceCtx(context.Background(), f, agent, action)
}

// ExplainIndependenceCtx is ExplainIndependence with the Definition 4.1
// scan bound to ctx (see LocalStateIndependenceCtx); the Lemma 4.3
// condition checks are cheap and run to completion regardless.
func (e *Engine) ExplainIndependenceCtx(ctx context.Context, f logic.Fact, agent, action string) (IndependenceWitness, error) {
	det, err := e.IsDeterministicAction(agent, action)
	if err != nil {
		return IndependenceWitness{}, err
	}
	report, err := e.LocalStateIndependenceCtx(ctx, f, agent, action)
	if err != nil {
		return IndependenceWitness{}, err
	}
	return IndependenceWitness{
		Deterministic: det,
		PastBased:     logic.IsPastBased(e.sys, f),
		Independent:   report.Independent,
	}, nil
}
