package core

import (
	"fmt"
	"math/big"
	"sort"

	"pak/internal/logic"
	"pak/internal/ratutil"
)

// Refrain analysis: the paper's Section 8 design insight made executable.
// Theorem 6.2 implies that whenever an agent acts while holding a low
// degree of belief in the constraint's condition, she drags the constraint
// probability down; by refraining in exactly those information states she
// raises it. RefrainAnalysis computes, from the *original* system alone,
// the constraint value that the pruned protocol would achieve:
//
//	µ' = Σ_{ℓ ∈ L_i[α], β(ℓ) ≥ p} w_ℓ · β_ℓ / Σ_{ℓ: β(ℓ) ≥ p} w_ℓ
//
// — the Jeffrey decomposition restricted to the retained cells. On the
// paper's FS with p = 0.95 this predicts exactly 990/991, the value the
// paper reports for the improved protocol, without constructing FS'.
//
// The prediction is exact when the condition φ does not itself depend on
// whether the pruned occurrences of α happen (e.g. φ = "Bob fires" is
// untouched by Alice's pruning); for conditions that mention does_i(α) the
// prediction is the Jeffrey bound rather than the pruned system's value.

// RefrainReport is the result of RefrainAnalysis.
type RefrainReport struct {
	// Threshold is the belief level p below which the agent refrains.
	Threshold *big.Rat
	// Original is µ(φ@α | α) in the analyzed system.
	Original *big.Rat
	// Predicted is the constraint value after pruning low-belief states
	// (nil when the agent would never act: every acting state is pruned).
	Predicted *big.Rat
	// ActingMeasure is the fraction of the original acting measure that
	// survives pruning: µ(kept cells | α).
	ActingMeasure *big.Rat
	// Kept and Pruned list the acting local states on each side of the
	// threshold, sorted.
	Kept, Pruned []string
}

// Improves reports whether the pruned protocol strictly improves the
// constraint value.
func (r RefrainReport) Improves() bool {
	return r.Predicted != nil && ratutil.Greater(r.Predicted, r.Original)
}

// String summarizes the report.
func (r RefrainReport) String() string {
	pred := "never acts"
	if r.Predicted != nil {
		pred = r.Predicted.RatString()
	}
	return fmt.Sprintf("refrain{p=%s µ=%s→%s keep=%d prune=%d}",
		r.Threshold.RatString(), r.Original.RatString(), pred, len(r.Kept), len(r.Pruned))
}

// RefrainAnalysis evaluates the Section 8 pruning at belief threshold p:
// what µ(φ@α | α) becomes if the agent refrains from performing α in every
// information state where β_i(φ) < p.
func (e *Engine) RefrainAnalysis(f logic.Fact, agent, action string, p *big.Rat) (RefrainReport, error) {
	d, err := e.Decompose(f, agent, action)
	if err != nil {
		return RefrainReport{}, err
	}
	mu, err := e.ConstraintProb(f, agent, action)
	if err != nil {
		return RefrainReport{}, err
	}
	report := RefrainReport{
		Threshold:     ratutil.Copy(p),
		Original:      mu,
		ActingMeasure: ratutil.Zero(),
	}
	keptMass := ratutil.Zero()
	keptValue := ratutil.Zero()
	for _, cell := range d.Cells {
		if ratutil.Geq(cell.Posterior, p) {
			report.Kept = append(report.Kept, cell.Local)
			keptMass = ratutil.Add(keptMass, cell.Weight)
			keptValue = ratutil.Add(keptValue, ratutil.Mul(cell.Weight, cell.CellConstraint))
		} else {
			report.Pruned = append(report.Pruned, cell.Local)
		}
	}
	sort.Strings(report.Kept)
	sort.Strings(report.Pruned)
	report.ActingMeasure = keptMass
	if keptMass.Sign() > 0 {
		report.Predicted = ratutil.Div(keptValue, keptMass)
	}
	return report, nil
}
