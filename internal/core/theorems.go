package core

import (
	"fmt"
	"math/big"
	"sort"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Machine checkers for the paper's formal results. Each checker evaluates
// both sides of the theorem's statement exactly and reports whether the
// implication holds on the given system. Since the theorems are universal
// (they hold for every pps satisfying their hypotheses), a checker
// returning Holds=false on a system whose hypotheses are met would be a
// counterexample to the paper — the test suite asserts this never happens,
// and conversely exhibits the paper's own counterexamples (Figure 1) when
// hypotheses are violated.

// SufficiencyReport is the result of CheckSufficiency (Theorem 4.2): if
// β_i(φ) ≥ p at every point at which i performs α, and φ is local-state
// independent of α, then µ_T(φ@α | α) ≥ p.
type SufficiencyReport struct {
	// Threshold is the p of the probabilistic constraint.
	Threshold *big.Rat
	// MinBelief is the minimum of β_i(φ) over points where α is performed.
	MinBelief *big.Rat
	// ConstraintProb is µ_T(φ@α | α).
	ConstraintProb *big.Rat
	// Independent reports Definition 4.1 (the theorem's hypothesis).
	Independent bool
	// PremiseMet is MinBelief ≥ p.
	PremiseMet bool
	// ConstraintMet is ConstraintProb ≥ p.
	ConstraintMet bool
}

// Holds reports whether the theorem's implication is satisfied on this
// system: hypotheses (independence ∧ premise) imply the constraint.
func (r SufficiencyReport) Holds() bool {
	if !r.Independent || !r.PremiseMet {
		return true
	}
	return r.ConstraintMet
}

// String summarizes the report.
func (r SufficiencyReport) String() string {
	return fmt.Sprintf("Thm4.2{p=%s minβ=%s µ(φ@α|α)=%s indep=%v holds=%v}",
		r.Threshold.RatString(), r.MinBelief.RatString(), r.ConstraintProb.RatString(),
		r.Independent, r.Holds())
}

// CheckSufficiency evaluates Theorem 4.2 on the system for threshold p.
func (e *Engine) CheckSufficiency(f logic.Fact, agent, action string, p *big.Rat) (SufficiencyReport, error) {
	min, _, err := e.BeliefRangeAtAction(f, agent, action)
	if err != nil {
		return SufficiencyReport{}, err
	}
	mu, err := e.ConstraintProb(f, agent, action)
	if err != nil {
		return SufficiencyReport{}, err
	}
	indep, err := e.LocalStateIndependence(f, agent, action)
	if err != nil {
		return SufficiencyReport{}, err
	}
	return SufficiencyReport{
		Threshold:      ratutil.Copy(p),
		MinBelief:      min,
		ConstraintProb: mu,
		Independent:    indep.Independent,
		PremiseMet:     ratutil.Geq(min, p),
		ConstraintMet:  ratutil.Geq(mu, p),
	}, nil
}

// ExpectationReport is the result of CheckExpectation (Theorem 6.2, the
// paper's main result): under local-state independence,
// µ_T(φ@α | α) = E_µT(β_i(φ)@α | α).
type ExpectationReport struct {
	// ConstraintProb is µ_T(φ@α | α).
	ConstraintProb *big.Rat
	// ExpectedBelief is E_µT(β_i(φ)@α | α).
	ExpectedBelief *big.Rat
	// Independent reports Definition 4.1 (the theorem's hypothesis).
	Independent bool
}

// Equal reports whether the two sides agree exactly.
func (r ExpectationReport) Equal() bool {
	return ratutil.Eq(r.ConstraintProb, r.ExpectedBelief)
}

// Holds reports whether the theorem's implication is satisfied: if the
// independence hypothesis is met the two sides must be equal.
func (r ExpectationReport) Holds() bool {
	return !r.Independent || r.Equal()
}

// String summarizes the report.
func (r ExpectationReport) String() string {
	return fmt.Sprintf("Thm6.2{µ(φ@α|α)=%s E[β]=%s indep=%v holds=%v}",
		r.ConstraintProb.RatString(), r.ExpectedBelief.RatString(), r.Independent, r.Holds())
}

// CheckExpectation evaluates Theorem 6.2 on the system.
func (e *Engine) CheckExpectation(f logic.Fact, agent, action string) (ExpectationReport, error) {
	mu, err := e.ConstraintProb(f, agent, action)
	if err != nil {
		return ExpectationReport{}, err
	}
	exp, err := e.ExpectedBelief(f, agent, action)
	if err != nil {
		return ExpectationReport{}, err
	}
	indep, err := e.LocalStateIndependence(f, agent, action)
	if err != nil {
		return ExpectationReport{}, err
	}
	return ExpectationReport{
		ConstraintProb: mu,
		ExpectedBelief: exp,
		Independent:    indep.Independent,
	}, nil
}

// NecessityReport is the result of CheckNecessity (Lemma 5.1): under
// local-state independence, if µ_T(φ@α | α) ≥ p then at some point at
// which α is performed, β_i(φ) ≥ p.
type NecessityReport struct {
	// Threshold is p.
	Threshold *big.Rat
	// ConstraintProb is µ_T(φ@α | α).
	ConstraintProb *big.Rat
	// MaxBelief is the maximum of β_i(φ) over points where α is performed.
	MaxBelief *big.Rat
	// Witness is a local state at which β_i(φ) ≥ p when performing α
	// (empty when none exists).
	Witness string
	// Independent reports Definition 4.1 (the lemma's hypothesis).
	Independent bool
}

// Holds reports whether the lemma's implication is satisfied.
func (r NecessityReport) Holds() bool {
	if !r.Independent || ratutil.Less(r.ConstraintProb, r.Threshold) {
		return true
	}
	return ratutil.Geq(r.MaxBelief, r.Threshold)
}

// String summarizes the report.
func (r NecessityReport) String() string {
	return fmt.Sprintf("L5.1{p=%s µ=%s maxβ=%s witness=%q holds=%v}",
		r.Threshold.RatString(), r.ConstraintProb.RatString(), r.MaxBelief.RatString(),
		r.Witness, r.Holds())
}

// CheckNecessity evaluates Lemma 5.1 on the system for threshold p.
func (e *Engine) CheckNecessity(f logic.Fact, agent, action string, p *big.Rat) (NecessityReport, error) {
	mu, err := e.ConstraintProb(f, agent, action)
	if err != nil {
		return NecessityReport{}, err
	}
	beliefs, err := e.BeliefByActionState(f, agent, action)
	if err != nil {
		return NecessityReport{}, err
	}
	indep, err := e.LocalStateIndependence(f, agent, action)
	if err != nil {
		return NecessityReport{}, err
	}
	report := NecessityReport{
		Threshold:      ratutil.Copy(p),
		ConstraintProb: mu,
		MaxBelief:      ratutil.Zero(),
		Independent:    indep.Independent,
	}
	// Iterate in sorted state order: the witness is "some state with
	// β ≥ p", and picking the lexicographically first makes the report —
	// and hence every wire response embedding it — deterministic across
	// runs and engine rebuilds (the stability E17 pins).
	locals := make([]string, 0, len(beliefs))
	for local := range beliefs {
		locals = append(locals, local)
	}
	sort.Strings(locals)
	for _, local := range locals {
		bel := beliefs[local]
		if ratutil.Greater(bel, report.MaxBelief) {
			report.MaxBelief = ratutil.Copy(bel)
		}
		if ratutil.Geq(bel, p) && report.Witness == "" {
			report.Witness = local
		}
	}
	return report, nil
}

// PAKReport is the result of CheckPAK (Theorem 7.1 and Corollary 7.2): if
// µ_T(φ@α | α) ≥ 1−δε then µ_T(β_i(φ)@α ≥ 1−ε | α) ≥ 1−δ. With δ = ε this
// is the paper's "probably approximately knowing" form.
type PAKReport struct {
	// Delta and Eps are the parameters δ, ε ∈ (0,1).
	Delta, Eps *big.Rat
	// ConstraintProb is µ_T(φ@α | α).
	ConstraintProb *big.Rat
	// Threshold is 1 − δε, the premise's constraint threshold.
	Threshold *big.Rat
	// BeliefLevel is 1 − ε, the "approximate knowledge" degree.
	BeliefLevel *big.Rat
	// BeliefMeasure is µ_T(β_i(φ)@α ≥ 1−ε | α).
	BeliefMeasure *big.Rat
	// Bound is 1 − δ, the promised lower bound on BeliefMeasure.
	Bound *big.Rat
	// Independent reports Definition 4.1 (the theorem's hypothesis).
	Independent bool
}

// PremiseMet reports whether µ_T(φ@α | α) ≥ 1−δε.
func (r PAKReport) PremiseMet() bool { return ratutil.Geq(r.ConstraintProb, r.Threshold) }

// ConclusionMet reports whether µ_T(β ≥ 1−ε | α) ≥ 1−δ.
func (r PAKReport) ConclusionMet() bool { return ratutil.Geq(r.BeliefMeasure, r.Bound) }

// Holds reports whether the theorem's implication is satisfied.
func (r PAKReport) Holds() bool {
	if !r.Independent || !r.PremiseMet() {
		return true
	}
	return r.ConclusionMet()
}

// String summarizes the report.
func (r PAKReport) String() string {
	return fmt.Sprintf("Thm7.1{δ=%s ε=%s µ=%s≥%s? %v; µ(β≥%s|α)=%s≥%s? %v; holds=%v}",
		r.Delta.RatString(), r.Eps.RatString(),
		r.ConstraintProb.RatString(), r.Threshold.RatString(), r.PremiseMet(),
		r.BeliefLevel.RatString(), r.BeliefMeasure.RatString(), r.Bound.RatString(), r.ConclusionMet(),
		r.Holds())
}

// CheckPAK evaluates Theorem 7.1 on the system for parameters δ, ε.
func (e *Engine) CheckPAK(f logic.Fact, agent, action string, delta, eps *big.Rat) (PAKReport, error) {
	mu, err := e.ConstraintProb(f, agent, action)
	if err != nil {
		return PAKReport{}, err
	}
	level := ratutil.OneMinus(eps)
	beliefMeasure, err := e.ThresholdMeasure(f, agent, action, level)
	if err != nil {
		return PAKReport{}, err
	}
	indep, err := e.LocalStateIndependence(f, agent, action)
	if err != nil {
		return PAKReport{}, err
	}
	return PAKReport{
		Delta:          ratutil.Copy(delta),
		Eps:            ratutil.Copy(eps),
		ConstraintProb: mu,
		Threshold:      ratutil.OneMinus(ratutil.Mul(delta, eps)),
		BeliefLevel:    level,
		BeliefMeasure:  beliefMeasure,
		Bound:          ratutil.OneMinus(delta),
		Independent:    indep.Independent,
	}, nil
}

// CheckPAKSquare evaluates Corollary 7.2 (δ = ε): if µ_T(φ@α|α) ≥ 1−ε²
// then µ_T(β ≥ 1−ε | α) ≥ 1−ε.
func (e *Engine) CheckPAKSquare(f logic.Fact, agent, action string, eps *big.Rat) (PAKReport, error) {
	return e.CheckPAK(f, agent, action, eps, eps)
}

// KoPReport is the result of CheckKoPLimit (Lemma F.1, the probabilistic
// limit of the Knowledge of Preconditions principle): under local-state
// independence, if µ_T(φ@α | α) = 1 then β_i(φ)@α = 1 with probability 1 —
// equivalently, the agent knows φ whenever it performs α.
type KoPReport struct {
	// ConstraintProb is µ_T(φ@α | α).
	ConstraintProb *big.Rat
	// MinBelief is the minimum belief over performance points.
	MinBelief *big.Rat
	// AlwaysKnows is true when K_i(φ) holds at every performance point.
	AlwaysKnows bool
	// Independent reports Definition 4.1 (the lemma's hypothesis).
	Independent bool
}

// Holds reports whether the lemma's implication is satisfied.
func (r KoPReport) Holds() bool {
	if !r.Independent || !ratutil.IsOne(r.ConstraintProb) {
		return true
	}
	return ratutil.IsOne(r.MinBelief) && r.AlwaysKnows
}

// String summarizes the report.
func (r KoPReport) String() string {
	return fmt.Sprintf("LF.1{µ=%s minβ=%s knows=%v holds=%v}",
		r.ConstraintProb.RatString(), r.MinBelief.RatString(), r.AlwaysKnows, r.Holds())
}

// CheckKoPLimit evaluates Lemma F.1 on the system. It also checks the
// knowledge-operator form: in a pps, belief 1 coincides with S5 knowledge.
func (e *Engine) CheckKoPLimit(f logic.Fact, agent, action string) (KoPReport, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return KoPReport{}, err
	}
	mu, err := e.ConstraintProb(f, agent, action)
	if err != nil {
		return KoPReport{}, err
	}
	min, _, err := e.BeliefRangeAtAction(f, agent, action)
	if err != nil {
		return KoPReport{}, err
	}
	indep, err := e.LocalStateIndependence(f, agent, action)
	if err != nil {
		return KoPReport{}, err
	}
	alwaysKnows := true
	var iterErr error
	info.set.ForEach(func(r int) bool {
		knows, kerr := e.Knows(f, agent, pps.RunID(r), info.times[r])
		if kerr != nil {
			iterErr = kerr
			return false
		}
		if !knows {
			alwaysKnows = false
			return false
		}
		return true
	})
	if iterErr != nil {
		return KoPReport{}, iterErr
	}
	return KoPReport{
		ConstraintProb: mu,
		MinBelief:      min,
		AlwaysKnows:    alwaysKnows,
		Independent:    indep.Independent,
	}, nil
}
