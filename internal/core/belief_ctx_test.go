package core

import (
	"context"
	"testing"

	"pak/internal/logic"
	"pak/internal/randsys"
)

// TestFactExtensionScanCtxCut: the φ@α and φ@ℓ extension scans consult
// the context every indepCtxInterval runs, so on a system whose proper
// action (or local state) spans more runs than the interval an already
// dead context cuts the scan with its cause — and because the memo never
// retains context aborts, a later caller with a live context still
// computes the exact extension and the memoized entry then serves even
// dead-context callers (a cache hit needs no scan to cut).
func TestFactExtensionScanCtxCut(t *testing.T) {
	sys, err := randsys.Generate(randsys.Config{
		Agents: 2, Depth: 7, MaxBranch: 3, MaxInitial: 2,
		ObsAlphabet: 64, ActionTime: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	agent := sys.AgentName(0)
	fact := logic.Does(agent, randsys.DesignatedAction)

	dead, cancel := context.WithCancelCause(context.Background())
	cancel(context.DeadlineExceeded)

	t.Run("atAction", func(t *testing.T) {
		_, info, err := e.properFor(agent, randsys.DesignatedAction)
		if err != nil {
			t.Fatal(err)
		}
		if n := info.set.Count(); n <= indepCtxInterval {
			t.Skipf("action spans %d runs, below the %d-run check interval", n, indepCtxInterval)
		}
		if _, err := e.FactAtActionCtx(dead, fact, agent, randsys.DesignatedAction); !IsContextErr(err) {
			t.Fatalf("dead-context φ@α scan err = %v, want the deadline cause", err)
		}
		// The abort is not cached: the same engine answers a live caller,
		// and the now-memoized entry serves the dead-context caller too.
		live, err := e.FactAtAction(fact, agent, randsys.DesignatedAction)
		if err != nil {
			t.Fatalf("live φ@α scan after abort: %v", err)
		}
		again, err := e.FactAtActionCtx(dead, fact, agent, randsys.DesignatedAction)
		if err != nil || again.Count() != live.Count() {
			t.Fatalf("cached φ@α under dead context = (%v, %v), want count %d", again, err, live.Count())
		}
	})

	t.Run("atLocal", func(t *testing.T) {
		// Find a local state wide enough that the scan checks the context.
		var local string
		for _, l := range sys.LocalStates(0) {
			if occ, _, ok := sys.Occurs(0, l); ok && occ.Count() > indepCtxInterval {
				local = l
				break
			}
		}
		if local == "" {
			t.Skipf("no local state spans more than the %d-run check interval", indepCtxInterval)
		}
		if _, err := e.FactAtLocalCtx(dead, fact, agent, local); !IsContextErr(err) {
			t.Fatalf("dead-context φ@ℓ scan err = %v, want the deadline cause", err)
		}
		live, err := e.FactAtLocal(fact, agent, local)
		if err != nil {
			t.Fatalf("live φ@ℓ scan after abort: %v", err)
		}
		again, err := e.FactAtLocalCtx(dead, fact, agent, local)
		if err != nil || again.Count() != live.Count() {
			t.Fatalf("cached φ@ℓ under dead context = (%v, %v), want count %d", again, err, live.Count())
		}
	})
}
