package core

import "sync"

// memo is a concurrency-safe, singleflight-style memoization table. The
// map lock is held only while locating (or installing) an entry, never
// while computing it, so distinct keys are computed in parallel while
// concurrent requests for the same key block on a single computation and
// then share its result. Entries are never evicted: the engine's caches
// are bounded by the number of distinct (fact, agent, action/local)
// tuples a workload touches, which is small relative to the cost of the
// exact rational arithmetic they save.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

// memoEntry holds one computed value. once guarantees the compute
// function runs at most once per key; panicked re-raises a compute panic
// on every subsequent access so a poisoned entry is never silently read
// as a zero value.
type memoEntry[V any] struct {
	once     sync.Once
	val      V
	err      error
	panicked any
}

// get returns the memoized value for key, running compute at most once
// per key across all goroutines.
func (c *memo[K, V]) get(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = new(memoEntry[V])
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicked = r
				panic(r)
			}
		}()
		e.val, e.err = compute()
	})
	if e.panicked != nil {
		panic(e.panicked)
	}
	return e.val, e.err
}

// len reports the number of cached entries (for tests and stats).
func (c *memo[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
