package core

import (
	"context"
	"errors"
	"sync"
)

// memo is a concurrency-safe, singleflight-style memoization table. The
// map lock is held only while locating (or installing) an entry, never
// while computing it, so distinct keys are computed in parallel while
// concurrent requests for the same key block on a single computation and
// then share its result. Entries are retained for the engine's lifetime
// — the caches are bounded by the number of distinct (fact, agent,
// action/local) tuples a workload touches — with one exception: an
// entry whose computation was aborted by a context (see get) is evicted
// immediately, so a deadline can never poison a key for later callers.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

// memoEntry holds one computed value. once guarantees the compute
// function runs at most once per key; panicked re-raises a compute panic
// on every subsequent access so a poisoned entry is never silently read
// as a zero value.
type memoEntry[V any] struct {
	once     sync.Once
	val      V
	err      error
	panicked any
}

// get returns the memoized value for key, running compute at most once
// per key across all goroutines.
func (c *memo[K, V]) get(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = new(memoEntry[V])
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.panicked = r
				panic(r)
			}
		}()
		e.val, e.err = compute()
	})
	if e.panicked != nil {
		panic(e.panicked)
	}
	if e.err != nil && IsContextErr(e.err) {
		// A context abort is a property of the aborted caller, not of the
		// key: never cache it. Evict the poisoned entry so the next get
		// recomputes under its own (possibly live) context; every waiter
		// already blocked on this entry still observes the abort.
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// getCtx is get for a context-bound compute function: it distinguishes
// the CALLER's abort from a shared computation's. A context error
// surfacing from the memo may belong to another caller whose scan this
// one joined (singleflight shares one computation per key); the memo
// evicts aborted entries, so while our own context is live we retry
// against a fresh entry, and after a few collisions we compute
// unmemoized under our own context so an adversarial neighbour can
// never starve us.
func (c *memo[K, V]) getCtx(ctx context.Context, key K, compute func() (V, error)) (V, error) {
	var v V
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		v, err = c.get(key, compute)
		if err == nil || !IsContextErr(err) || context.Cause(ctx) != nil {
			return v, err
		}
	}
	return compute()
}

// IsContextErr reports whether err is (or wraps) a context cancellation
// or deadline expiry — the error class the memo refuses to retain, the
// query layer's envelope fold counts as not-visited, and the service
// maps to 504s. Exported so every layer shares one classifier.
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// len reports the number of cached entries (for tests and stats).
func (c *memo[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
