package core

import (
	"context"
	"testing"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/randsys"
	"pak/internal/ratutil"
)

// TestKnowsUsesFactExtensionMemo pins the Knows bugfix: knowledge
// queries route through the memoized factAtLocal extension (K_i(φ) at ℓ
// ⇔ occ(ℓ) ⊆ φ@ℓ) instead of rescanning f.Holds per call. The memo hit
// is observed through CacheStats: the first Knows at a state populates
// the events table, and any number of further Knows calls at the same
// state leave it unchanged.
func TestKnowsUsesFactExtensionMemo(t *testing.T) {
	sys, err := randsys.Generate(randsys.Config{
		Agents: 2, Depth: 7, MaxBranch: 3, MaxInitial: 2,
		ObsAlphabet: 64, ActionTime: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	agent := sys.AgentName(0)
	fact := logic.Does(agent, randsys.DesignatedAction)

	if _, events0, _ := e.CacheStats(); events0 != 0 {
		t.Fatalf("fresh engine has %d cached extensions", events0)
	}
	first, err := e.Knows(fact, agent, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, events1, _ := e.CacheStats()
	if events1 == 0 {
		t.Fatal("Knows did not populate the fact-extension memo")
	}
	for n := 0; n < 5; n++ {
		again, err := e.Knows(fact, agent, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("repeat Knows = %v, first %v", again, first)
		}
	}
	if _, events2, _ := e.CacheStats(); events2 != events1 {
		t.Fatalf("repeated Knows grew the extension memo %d → %d; the memoized path was bypassed", events1, events2)
	}

	// Knows must agree with Belief = 1 (full-support prior) at every
	// sampled point.
	for r := 0; r < sys.NumRuns(); r += 7 {
		run := pps.RunID(r)
		for tm := 0; tm < sys.RunLen(run); tm++ {
			k, err := e.Knows(fact, agent, run, tm)
			if err != nil {
				t.Fatal(err)
			}
			bel, err := e.Belief(fact, agent, sys.Local(run, tm, 0))
			if err != nil {
				t.Fatal(err)
			}
			if k != ratutil.IsOne(bel) {
				t.Fatalf("(%d,%d): Knows = %v but Belief = %s", r, tm, k, bel.RatString())
			}
		}
	}
}

// TestKnowsCtxAbort: on a local state whose occurrence set spans more
// runs than the scan's check interval, a dead context cuts the
// extension scan behind KnowsCtx with the context's cause — and the
// abort is never memoized, so a live caller still gets the exact answer
// and the now-cached extension then serves even dead-context callers.
func TestKnowsCtxAbort(t *testing.T) {
	sys, err := randsys.Generate(randsys.Config{
		Agents: 2, Depth: 7, MaxBranch: 3, MaxInitial: 2,
		ObsAlphabet: 64, ActionTime: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := New(sys)
	agent := sys.AgentName(0)
	fact := logic.Does(agent, randsys.DesignatedAction)

	// Find a point whose local state spans enough runs for the scan to
	// consult the context at all.
	run, tm := pps.RunID(-1), 0
	for r := 0; r < sys.NumRuns() && run < 0; r++ {
		for ti := 0; ti < sys.RunLen(pps.RunID(r)); ti++ {
			l := sys.Local(pps.RunID(r), ti, 0)
			if occ, _, ok := sys.OccursShared(0, l); ok && occ.Count() > indepCtxInterval {
				run, tm = pps.RunID(r), ti
				break
			}
		}
	}
	if run < 0 {
		t.Skipf("no local state spans more than the %d-run check interval", indepCtxInterval)
	}

	dead, cancel := context.WithCancelCause(context.Background())
	cancel(context.DeadlineExceeded)
	if _, err := e.KnowsCtx(dead, fact, agent, run, tm); !IsContextErr(err) {
		t.Fatalf("dead-context KnowsCtx err = %v, want the deadline cause", err)
	}
	live, err := e.Knows(fact, agent, run, tm)
	if err != nil {
		t.Fatalf("live Knows after abort: %v", err)
	}
	again, err := e.KnowsCtx(dead, fact, agent, run, tm)
	if err != nil || again != live {
		t.Fatalf("memoized KnowsCtx under dead context = (%v, %v), want %v", again, err, live)
	}
}
