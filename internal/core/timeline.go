package core

import (
	"fmt"
	"math/big"

	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Belief timelines: how an agent's degree of belief in a fact evolves
// along a run as its local state accumulates information. For facts about
// runs this is a martingale-like trajectory of posteriors; for transient
// facts it tracks the belief in "φ holds now" at each point.

// TimelinePoint is one step of a belief timeline.
type TimelinePoint struct {
	// Time is the point's time.
	Time int
	// Local is the agent's local state there.
	Local string
	// Belief is β_i(φ) at the point.
	Belief *big.Rat
	// Knows reports K_i(φ) at the point (equivalent to Belief = 1 in a
	// pps, where the prior has full support).
	Knows bool
}

// String renders the point.
func (p TimelinePoint) String() string {
	return fmt.Sprintf("t=%d ℓ=%q β=%s K=%v", p.Time, p.Local, p.Belief.RatString(), p.Knows)
}

// BeliefTimeline returns agent's belief in f at every point of run r, in
// time order.
func (e *Engine) BeliefTimeline(f logic.Fact, agent string, r pps.RunID) ([]TimelinePoint, error) {
	a, err := e.agent(agent)
	if err != nil {
		return nil, err
	}
	if r < 0 || int(r) >= e.sys.NumRuns() {
		return nil, fmt.Errorf("%w: run %d", ErrBadPoint, r)
	}
	out := make([]TimelinePoint, 0, e.sys.RunLen(r))
	for t := 0; t < e.sys.RunLen(r); t++ {
		local := e.sys.Local(r, t, a)
		bel, berr := e.Belief(f, agent, local)
		if berr != nil {
			return nil, berr
		}
		out = append(out, TimelinePoint{
			Time:   t,
			Local:  local,
			Belief: bel,
			Knows:  ratutil.IsOne(bel),
		})
	}
	return out, nil
}

// ExpectedBeliefAtTime returns E[β_i(φ) at time t], the prior-weighted
// average of the agent's belief over the runs alive at time t. For a fact
// about runs, the law of total expectation makes this constant in t and
// equal to the prior µ(φ) whenever all runs are alive — the martingale
// property of Bayesian updating, which the tests verify.
func (e *Engine) ExpectedBeliefAtTime(f logic.Fact, agent string, t int) (*big.Rat, error) {
	a, err := e.agent(agent)
	if err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, fmt.Errorf("%w: time %d", ErrBadPoint, t)
	}
	alive := e.sys.RunsWhere(func(r pps.RunID) bool { return t < e.sys.RunLen(r) })
	if alive.IsEmpty() {
		return nil, fmt.Errorf("%w: no runs at time %d", ErrBadPoint, t)
	}
	mAlive := e.sys.Measure(alive)
	total := new(big.Rat)
	var iterErr error
	alive.ForEach(func(r int) bool {
		bel, berr := e.Belief(f, agent, e.sys.Local(pps.RunID(r), t, a))
		if berr != nil {
			iterErr = berr
			return false
		}
		// RunProbShared: Mul only reads its operands, no defensive copy.
		total.Add(total, ratutil.Mul(e.sys.RunProbShared(pps.RunID(r)), bel))
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	return ratutil.Div(total, mAlive), nil
}
