// Package montecarlo provides a sampling-based estimator for purely
// probabilistic systems and protocols, cross-validating the exact rational
// engine: sampled frequencies of events, constraint probabilities and
// belief thresholds converge to the exact values computed by internal/core.
//
// The paper's evaluation is analytic; this package supplies the
// "empirical" counterpart a systems reader expects: estimates carry
// Hoeffding confidence radii, and the test suite (plus experiment E7 in
// the benchmark harness) verifies that the exact values always fall within
// the confidence interval.
//
// All sampling is deterministic given the seed.
package montecarlo

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"pak/internal/pps"
	"pak/internal/protocol"
	"pak/internal/ratutil"
)

// Sentinel errors returned (wrapped) by this package.
var (
	// ErrNoSamples indicates a request for an estimate from zero samples.
	ErrNoSamples = errors.New("montecarlo: sample count must be positive")
	// ErrNoHits indicates a conditional estimate whose conditioning event
	// was never sampled.
	ErrNoHits = errors.New("montecarlo: conditioning event never occurred in the sample")
)

// Estimate is a sampled probability with its sample size and a Hoeffding
// confidence radius at 99% confidence.
type Estimate struct {
	// P is the point estimate (a frequency).
	P float64
	// N is the number of samples behind the estimate.
	N int
	// Radius is the 99%-confidence Hoeffding radius: with probability at
	// least 0.99 the true value lies within [P-Radius, P+Radius].
	Radius float64
}

// Contains reports whether the exact value v lies within the confidence
// interval.
func (e Estimate) Contains(v float64) bool {
	return v >= e.P-e.Radius && v <= e.P+e.Radius
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%.6f ±%.6f (n=%d)", e.P, e.Radius, e.N)
}

// delta99 is the fixed confidence parameter of the float-radius tier:
// every Estimate carries a 99% interval (δ = 1/100).
var delta99 = big.NewRat(1, 100)

// hoeffdingRadius returns the two-sided 99% Hoeffding radius for n
// samples as the float64 view of the exact rational bound
// RadiusRat(n, 1/100) — NOT a parallel math.Sqrt/math.Log computation.
// Routing the float through the rational keeps the two tiers in
// lockstep: the rational errs only upward, and its 2^-30-dyadic form is
// exactly representable in float64, so the float radius is itself a
// strict upper bound on sqrt(ln(200)/(2n)) and the interval never
// under-covers (pinned by TestRadiusNeverUnderCovers).
func hoeffdingRadius(n int) float64 {
	f, _ := RadiusRat(n, delta99).Float64()
	return f
}

// Sampler draws runs from a pps according to µ_T. A Sampler is a seeded
// cursor over an immutable Model: the rng is the only mutable state, so
// Samplers are cheap and single-goroutine while the Model underneath is
// freely shared.
type Sampler struct {
	model *Model
	sys   *pps.System
	rng   *rand.Rand
}

// NewSampler returns a Sampler over sys seeded deterministically. It
// builds a private Model; callers sampling one system repeatedly (or
// concurrently) should build the Model once and derive Samplers from it.
func NewSampler(sys *pps.System, seed int64) *Sampler {
	return NewModel(sys).Sampler(seed)
}

// SampleNodePath draws one root-to-leaf node path according to the tree's
// transition probabilities.
func (s *Sampler) SampleNodePath() []pps.NodeID {
	var path []pps.NodeID
	node := pps.Root
	for !s.sys.IsLeaf(node) {
		children := s.sys.ChildrenOf(node)
		cum := s.model.cum[node]
		x := s.rng.Float64() * cum[len(cum)-1]
		idx := 0
		for idx < len(cum)-1 && x > cum[idx] {
			idx++
		}
		node = children[idx]
		path = append(path, node)
	}
	return path
}

// SampleRun draws one run (as a RunID) according to µ_T.
func (s *Sampler) SampleRun() pps.RunID {
	path := s.SampleNodePath()
	return s.model.leafRun[path[len(path)-1]]
}

// EstimateEvent estimates µ_T of the event defined by pred over n samples.
func (s *Sampler) EstimateEvent(pred func(r pps.RunID) bool, n int) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, ErrNoSamples
	}
	hits := 0
	for k := 0; k < n; k++ {
		if pred(s.SampleRun()) {
			hits++
		}
	}
	return Estimate{P: float64(hits) / float64(n), N: n, Radius: hoeffdingRadius(n)}, nil
}

// EstimateConditional estimates µ_T(a | b) over n samples of the prior,
// counting only samples falling in b.
func (s *Sampler) EstimateConditional(a, b func(r pps.RunID) bool, n int) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, ErrNoSamples
	}
	hitsA, hitsB := 0, 0
	for k := 0; k < n; k++ {
		r := s.SampleRun()
		if !b(r) {
			continue
		}
		hitsB++
		if a(r) {
			hitsA++
		}
	}
	if hitsB == 0 {
		return Estimate{}, ErrNoHits
	}
	return Estimate{P: float64(hitsA) / float64(hitsB), N: hitsB, Radius: hoeffdingRadius(hitsB)}, nil
}

// ProtocolSampler simulates a protocol.Model directly, without unfolding
// it into a pps first. This scales to horizons whose trees would be too
// large to enumerate, trading exactness for sampling.
type ProtocolSampler struct {
	m   protocol.Model
	rng *rand.Rand
}

// NewProtocolSampler returns a sampler for m seeded deterministically.
func NewProtocolSampler(m protocol.Model, seed int64) *ProtocolSampler {
	return &ProtocolSampler{m: m, rng: rand.New(rand.NewSource(seed))}
}

// Trace is one simulated execution of a protocol: the global state at
// every time and the actions chosen at every step.
type Trace struct {
	// States[t] is the global state at time t, 0 ≤ t ≤ Horizon.
	States []protocol.Global
	// Acts[t] are the agents' actions at time t, 0 ≤ t < Horizon.
	Acts [][]string
	// EnvActs[t] is the environment action at time t.
	EnvActs []string
}

// pick draws from a weighted distribution.
func pick[T any](rng *rand.Rand, dist []protocol.Weighted[T]) T {
	x := rng.Float64()
	acc := 0.0
	for _, w := range dist {
		acc += ratutil.Float(w.Pr)
		if x <= acc {
			return w.Value
		}
	}
	return dist[len(dist)-1].Value
}

// Sample simulates one execution of the protocol.
func (ps *ProtocolSampler) Sample() (Trace, error) {
	g := pick(ps.rng, ps.m.Initials()).Clone()
	trace := Trace{States: []protocol.Global{g.Clone()}}
	agents := ps.m.Agents()
	for t := 0; t < ps.m.Horizon(); t++ {
		acts := make([]string, len(agents))
		for a := range agents {
			dist := ps.m.AgentStep(a, g.Locals[a], t)
			if err := protocol.ValidateDist(dist); err != nil {
				return Trace{}, fmt.Errorf("agent %s at t=%d: %w", agents[a], t, err)
			}
			acts[a] = pick(ps.rng, dist)
		}
		envDist := ps.m.EnvStep(g, acts, t)
		if err := protocol.ValidateDist(envDist); err != nil {
			return Trace{}, fmt.Errorf("environment at t=%d: %w", t, err)
		}
		envAct := pick(ps.rng, envDist)
		next, err := ps.m.Next(g, acts, envAct, t)
		if err != nil {
			return Trace{}, fmt.Errorf("transition at t=%d: %w", t, err)
		}
		trace.Acts = append(trace.Acts, acts)
		trace.EnvActs = append(trace.EnvActs, envAct)
		trace.States = append(trace.States, next.Clone())
		g = next
	}
	return trace, nil
}

// EstimateTrace estimates the probability that pred holds of a simulated
// execution, over n independent simulations.
func (ps *ProtocolSampler) EstimateTrace(pred func(Trace) bool, n int) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, ErrNoSamples
	}
	hits := 0
	for k := 0; k < n; k++ {
		tr, err := ps.Sample()
		if err != nil {
			return Estimate{}, err
		}
		if pred(tr) {
			hits++
		}
	}
	return Estimate{P: float64(hits) / float64(n), N: n, Radius: hoeffdingRadius(n)}, nil
}

// EstimateTraceConditional estimates P(a | b) over simulated executions.
func (ps *ProtocolSampler) EstimateTraceConditional(a, b func(Trace) bool, n int) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, ErrNoSamples
	}
	hitsA, hitsB := 0, 0
	for k := 0; k < n; k++ {
		tr, err := ps.Sample()
		if err != nil {
			return Estimate{}, err
		}
		if !b(tr) {
			continue
		}
		hitsB++
		if a(tr) {
			hitsA++
		}
	}
	if hitsB == 0 {
		return Estimate{}, ErrNoHits
	}
	return Estimate{P: float64(hitsA) / float64(hitsB), N: hitsB, Radius: hoeffdingRadius(hitsB)}, nil
}
