// The Model/Sampler split: a Model is the immutable sampling substrate
// over one system — cumulative edge-probability tables and the leaf→run
// index — precomputed eagerly so one Model can serve any number of
// concurrent Samplers without synchronization. Samplers are cheap,
// single-goroutine cursors (a seeded rng over a shared Model); anything
// that wants deterministic parallel sampling hands each worker its own
// Sampler over one shared Model.
package montecarlo

import (
	"math/rand"

	"pak/internal/pps"
	"pak/internal/ratutil"
)

// Model is the precomputed, read-only sampling substrate for one system.
// It is safe for concurrent use: all tables are built eagerly by
// NewModel and never mutated afterwards. Build one Model per system and
// share it; derive per-use Samplers with Model.Sampler.
type Model struct {
	sys *pps.System
	// cum[node] holds the cumulative edge probabilities of node's
	// children as float64 for fast inverse-transform sampling (nil for
	// leaves).
	cum [][]float64
	// leafRun resolves leaf nodes to run identifiers (-1 for internal
	// nodes).
	leafRun []pps.RunID
}

// NewModel precomputes the sampling tables for sys. The cost is one pass
// over the tree's nodes and runs; after that, sampling never touches the
// exact rationals again.
func NewModel(sys *pps.System) *Model {
	m := &Model{
		sys:     sys,
		cum:     make([][]float64, sys.NumNodes()),
		leafRun: make([]pps.RunID, sys.NumNodes()),
	}
	for id := range m.leafRun {
		m.leafRun[id] = -1
	}
	for id := 0; id < sys.NumNodes(); id++ {
		node := pps.NodeID(id)
		if sys.IsLeaf(node) {
			continue
		}
		children := sys.ChildrenOf(node)
		c := make([]float64, len(children))
		total := 0.0
		for i, ch := range children {
			// EdgeProbShared: Float only reads the rational, no clone needed.
			total += ratutil.Float(sys.EdgeProbShared(ch))
			c[i] = total
		}
		m.cum[id] = c
	}
	for r := 0; r < sys.NumRuns(); r++ {
		run := pps.RunID(r)
		m.leafRun[sys.NodeAt(run, sys.RunLen(run)-1)] = run
	}
	return m
}

// System returns the system the model samples.
func (m *Model) System() *pps.System { return m.sys }

// Sampler derives a deterministic, seeded sampling cursor over the
// model. Samplers are not safe for concurrent use; Models are — give
// each goroutine its own Sampler.
func (m *Model) Sampler(seed int64) *Sampler {
	return &Sampler{model: m, sys: m.sys, rng: rand.New(rand.NewSource(seed))}
}
