package montecarlo

import (
	"fmt"

	"pak/internal/logic"
	"pak/internal/pps"
)

// Sampled belief estimation: the empirical counterparts of the exact
// belief queries in internal/core. An agent's belief β_i(φ) at local
// state ℓ is the conditional probability µ(φ@ℓ | ℓ), so it is estimated
// by sampling runs from the prior and conditioning on ℓ occurring; the
// expected acting belief and the constraint probability are estimated the
// same way from the acting runs.

// EstimateBelief estimates β_i(φ) at the agent's local state ℓ: the
// frequency of φ holding at ℓ's occurrence time among sampled runs that
// pass through ℓ. It fails with ErrNoHits if no sample reaches ℓ.
func (s *Sampler) EstimateBelief(f logic.Fact, agent pps.AgentID, local string, n int) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, ErrNoSamples
	}
	_, tm, ok := s.sys.OccursShared(agent, local)
	if !ok {
		return Estimate{}, fmt.Errorf("montecarlo: state %q never occurs: %w", local, ErrNoHits)
	}
	hits, reached := 0, 0
	for k := 0; k < n; k++ {
		r := s.SampleRun()
		if tm >= s.sys.RunLen(r) || s.sys.Local(r, tm, agent) != local {
			continue
		}
		reached++
		if f.Holds(s.sys, r, tm) {
			hits++
		}
	}
	if reached == 0 {
		return Estimate{}, ErrNoHits
	}
	return Estimate{P: float64(hits) / float64(reached), N: reached, Radius: hoeffdingRadius(reached)}, nil
}

// ConstraintEstimate bundles the sampled view of a probabilistic
// constraint µ(φ@α | α).
type ConstraintEstimate struct {
	// Constraint estimates µ(φ@α | α).
	Constraint Estimate
	// MeanActingBelief is the average, over sampled acting runs, of the
	// exact belief at the acting state. By Theorem 6.2 it converges to
	// the same value as Constraint under local-state independence; the
	// estimator exposes the pair so the identity can be observed
	// empirically.
	MeanActingBelief float64
	// ActingRuns is the number of sampled runs in which α was performed.
	ActingRuns int
}

// String renders the estimate pair.
func (c ConstraintEstimate) String() string {
	return fmt.Sprintf("µ̂=%v Ê[β]=%.6f (acting n=%d)", c.Constraint, c.MeanActingBelief, c.ActingRuns)
}

// EstimateConstraint estimates µ(φ@α | α) and the mean acting belief for
// a proper action of the given agent, using beliefAt to evaluate the
// exact belief at a point (callers pass core.Engine.BeliefAtPoint or an
// equivalent; the indirection avoids an import cycle).
func (s *Sampler) EstimateConstraint(
	f logic.Fact,
	agent pps.AgentID,
	action string,
	n int,
	beliefAt func(r pps.RunID, t int) (float64, error),
) (ConstraintEstimate, error) {
	if n <= 0 {
		return ConstraintEstimate{}, ErrNoSamples
	}
	acting, holds := 0, 0
	beliefSum := 0.0
	for k := 0; k < n; k++ {
		r := s.SampleRun()
		perfT := -1
		for t := 0; t < s.sys.RunLen(r); t++ {
			if act, ok := s.sys.Action(r, t, agent); ok && act == action {
				perfT = t
				break
			}
		}
		if perfT < 0 {
			continue
		}
		acting++
		if f.Holds(s.sys, r, perfT) {
			holds++
		}
		if beliefAt != nil {
			bel, err := beliefAt(r, perfT)
			if err != nil {
				return ConstraintEstimate{}, err
			}
			beliefSum += bel
		}
	}
	if acting == 0 {
		return ConstraintEstimate{}, ErrNoHits
	}
	out := ConstraintEstimate{
		Constraint: Estimate{
			P:      float64(holds) / float64(acting),
			N:      acting,
			Radius: hoeffdingRadius(acting),
		},
		ActingRuns: acting,
	}
	if beliefAt != nil {
		out.MeanActingBelief = beliefSum / float64(acting)
	}
	return out, nil
}
