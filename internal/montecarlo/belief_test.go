package montecarlo

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/ratutil"
)

func TestEstimateBeliefMatchesExact(t *testing.T) {
	// Sampled belief at T-hat's non-revealing state must contain the
	// exact 8/9.
	sys, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(sys, 21)
	est, err := s.EstimateBelief(paper.ThatBitFact(), 0, "i1:recv=m", samples)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(8.0 / 9.0) {
		t.Fatalf("estimate %v does not contain 8/9", est)
	}
}

func TestEstimateBeliefErrors(t *testing.T) {
	sys, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(sys, 1)
	if _, err := s.EstimateBelief(paper.ThatBitFact(), 0, "i1:recv=m", 0); !errors.Is(err, ErrNoSamples) {
		t.Errorf("zero samples err = %v", err)
	}
	if _, err := s.EstimateBelief(paper.ThatBitFact(), 0, "no-such-state", 100); !errors.Is(err, ErrNoHits) {
		t.Errorf("unknown state err = %v", err)
	}
}

func TestEstimateConstraintFiringSquad(t *testing.T) {
	// The sampled constraint and the sampled mean acting belief must both
	// converge to 99/100 (Theorem 6.2, observed empirically).
	sys := fsSystem(t)
	e := core.New(sys)
	s := NewSampler(sys, 31)
	alice, _ := sys.AgentIndex(paper.Alice)
	both := paper.FSBothFire()
	beliefAt := func(r pps.RunID, tt int) (float64, error) {
		bel, err := e.BeliefAtPoint(both, paper.Alice, r, tt)
		if err != nil {
			return 0, err
		}
		return ratutil.Float(bel), nil
	}
	est, err := s.EstimateConstraint(both, alice, paper.ActFire, samples, beliefAt)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Constraint.Contains(0.99) {
		t.Fatalf("constraint estimate %v does not contain 0.99", est.Constraint)
	}
	if math.Abs(est.MeanActingBelief-0.99) > 0.02 {
		t.Fatalf("mean acting belief %v too far from 0.99", est.MeanActingBelief)
	}
	// The two sampled sides of Theorem 6.2 should be close to each other.
	if math.Abs(est.MeanActingBelief-est.Constraint.P) > 0.02 {
		t.Fatalf("empirical Theorem 6.2 gap too large: %v", est)
	}
	if !strings.Contains(est.String(), "acting n=") {
		t.Errorf("String = %q", est.String())
	}
}

func TestEstimateConstraintWithoutBeliefFn(t *testing.T) {
	sys := fsSystem(t)
	s := NewSampler(sys, 5)
	alice, _ := sys.AgentIndex(paper.Alice)
	est, err := s.EstimateConstraint(paper.FSBothFire(), alice, paper.ActFire, 10_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanActingBelief != 0 {
		t.Error("belief mean should be 0 when no belief function is given")
	}
	if est.ActingRuns == 0 {
		t.Error("no acting runs sampled")
	}
}

func TestEstimateConstraintErrors(t *testing.T) {
	sys := fsSystem(t)
	s := NewSampler(sys, 1)
	alice, _ := sys.AgentIndex(paper.Alice)
	if _, err := s.EstimateConstraint(paper.FSBothFire(), alice, paper.ActFire, 0, nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("zero samples err = %v", err)
	}
	if _, err := s.EstimateConstraint(paper.FSBothFire(), alice, "never", 100, nil); !errors.Is(err, ErrNoHits) {
		t.Errorf("never-performed err = %v", err)
	}
	boom := errors.New("boom")
	_, err := s.EstimateConstraint(paper.FSBothFire(), alice, paper.ActFire, 1000,
		func(pps.RunID, int) (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("belief error not propagated: %v", err)
	}
}
