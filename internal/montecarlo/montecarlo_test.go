package montecarlo

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pak/internal/core"
	"pak/internal/paper"
	"pak/internal/pps"
	"pak/internal/protocol"
	"pak/internal/ratutil"
)

const samples = 40_000

func fsSystem(t *testing.T) *pps.System {
	t.Helper()
	sys, err := paper.FiringSquad(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEstimateEventMatchesExact(t *testing.T) {
	sys := fsSystem(t)
	s := NewSampler(sys, 1)
	goOne := paper.FSGoIsOne()
	est, err := s.EstimateEvent(func(r pps.RunID) bool {
		return goOne.Holds(sys, r, 0)
	}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(0.5) {
		t.Fatalf("estimate %v does not contain exact value 0.5", est)
	}
}

func TestEstimateConditionalMatchesEngine(t *testing.T) {
	// E7: sampled µ(φ_both@fire_A | fire_A) must contain the exact 0.99.
	sys := fsSystem(t)
	e := core.New(sys)
	exact, err := e.ConstraintProb(paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.FactAtAction(paper.FSBothFire(), paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	perf, err := e.PerformedSet(paper.Alice, paper.ActFire)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(sys, 2)
	est, err := s.EstimateConditional(
		func(r pps.RunID) bool { return ev.Contains(int(r)) },
		func(r pps.RunID) bool { return perf.Contains(int(r)) },
		samples,
	)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(ratutil.Float(exact)) {
		t.Fatalf("estimate %v does not contain exact %v", est, ratutil.Float(exact))
	}
}

func TestSamplerDeterministic(t *testing.T) {
	sys := fsSystem(t)
	a := NewSampler(sys, 42)
	b := NewSampler(sys, 42)
	for k := 0; k < 100; k++ {
		if a.SampleRun() != b.SampleRun() {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestSampleNodePathReachesLeaf(t *testing.T) {
	sys := fsSystem(t)
	s := NewSampler(sys, 7)
	for k := 0; k < 50; k++ {
		path := s.SampleNodePath()
		if len(path) == 0 {
			t.Fatal("empty path")
		}
		if !sys.IsLeaf(path[len(path)-1]) {
			t.Fatal("path does not end at a leaf")
		}
		if sys.ParentOf(path[0]) != pps.Root {
			t.Fatal("path does not start at an initial state")
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	sys := fsSystem(t)
	s := NewSampler(sys, 3)
	if _, err := s.EstimateEvent(func(pps.RunID) bool { return true }, 0); !errors.Is(err, ErrNoSamples) {
		t.Errorf("zero samples err = %v", err)
	}
	_, err := s.EstimateConditional(
		func(pps.RunID) bool { return true },
		func(pps.RunID) bool { return false }, // impossible conditioning event
		100,
	)
	if !errors.Is(err, ErrNoHits) {
		t.Errorf("no hits err = %v", err)
	}
}

func TestEstimateContainsAndString(t *testing.T) {
	e := Estimate{P: 0.5, N: 100, Radius: 0.1}
	if !e.Contains(0.55) || e.Contains(0.7) {
		t.Error("Contains wrong")
	}
	if !strings.Contains(e.String(), "n=100") {
		t.Errorf("String = %q", e.String())
	}
}

func TestHoeffdingRadiusShrinks(t *testing.T) {
	if hoeffdingRadius(100) <= hoeffdingRadius(10_000) {
		t.Error("radius should shrink with more samples")
	}
	if hoeffdingRadius(0) != 1 {
		t.Error("radius for n=0 should be the trivial bound 1")
	}
}

// TestRadiusNeverUnderCovers pins the bugfix that routed the float
// radius through the exact rational tier: for every n the float radius
// must (1) be the exact float64 view of RadiusRat(n, 1/100) — the two
// tiers in lockstep, no parallel float computation to drift — and
// (2) sit at or above the true radius sqrt(ln(200)/(2n)), so an
// interval built from the float can only over-cover, never under-cover
// the 99% guarantee. The slack is bounded too (lnUpper plus one
// 2^-30 dyadic round-up), so the fix cannot hide behind a vacuously
// wide bound.
func TestRadiusNeverUnderCovers(t *testing.T) {
	for _, n := range []int{1, 2, 7, 10, 100, 1_000, 10_000, 1_000_000} {
		got := hoeffdingRadius(n)
		rat, _ := RadiusRat(n, delta99).Float64()
		if got != rat {
			t.Errorf("n=%d: float radius %v != rational tier's %v", n, got, rat)
		}
		// A radius beyond 1 is vacuous for values in [0, 1]; both tiers
		// clamp there, so the truth to cover is clamped too.
		truth := math.Min(1, math.Sqrt(math.Log(200)/(2*float64(n))))
		if got < truth {
			t.Errorf("n=%d: float radius %v under-covers the true radius %v", n, got, truth)
		}
		if got > truth+1e-6 && got < 1 {
			t.Errorf("n=%d: float radius %v is vacuously loose (true %v)", n, got, truth)
		}
	}
}

func TestProtocolSamplerFiringSquad(t *testing.T) {
	// Simulating the protocol directly (without unfolding) must agree with
	// the exact conditional too.
	m, err := paper.FiringSquadModel(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	ps := NewProtocolSampler(m, 11)
	bothFire := func(tr Trace) bool {
		return tr.Acts[2][0] == paper.ActFire && tr.Acts[2][1] == paper.ActFire
	}
	aliceFires := func(tr Trace) bool { return tr.Acts[2][0] == paper.ActFire }
	est, err := ps.EstimateTraceConditional(bothFire, aliceFires, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(0.99) {
		t.Fatalf("protocol-level estimate %v does not contain 0.99", est)
	}
}

func TestProtocolSamplerTraceShape(t *testing.T) {
	m, err := paper.FiringSquadModel(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	ps := NewProtocolSampler(m, 5)
	tr, err := ps.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.States) != 4 || len(tr.Acts) != 3 || len(tr.EnvActs) != 3 {
		t.Fatalf("trace shape: states=%d acts=%d envActs=%d", len(tr.States), len(tr.Acts), len(tr.EnvActs))
	}
}

func TestProtocolSamplerPropagatesErrors(t *testing.T) {
	bad := protocol.FuncModel{
		AgentNames: []string{"i"},
		Init: []protocol.Weighted[protocol.Global]{
			protocol.W(protocol.Global{Env: "e", Locals: []string{"s"}}, ratutil.One()),
		},
		Step: func(agent int, local string, t int) []protocol.Weighted[string] {
			return nil // invalid distribution
		},
		Trans: func(g protocol.Global, acts []string, envAct string, t int) (protocol.Global, error) {
			return g, nil
		},
		Bound: 1,
	}
	ps := NewProtocolSampler(bad, 1)
	if _, err := ps.Sample(); !errors.Is(err, protocol.ErrBadDist) {
		t.Fatalf("Sample err = %v, want ErrBadDist", err)
	}
	if _, err := ps.EstimateTrace(func(Trace) bool { return true }, 10); err == nil {
		t.Fatal("EstimateTrace should propagate sampling errors")
	}
}

func TestEstimateTraceZeroSamples(t *testing.T) {
	m, err := paper.FiringSquadModel(ratutil.R(1, 10), paper.FSOriginal)
	if err != nil {
		t.Fatal(err)
	}
	ps := NewProtocolSampler(m, 1)
	if _, err := ps.EstimateTrace(func(Trace) bool { return true }, 0); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v", err)
	}
	if _, err := ps.EstimateTraceConditional(func(Trace) bool { return true },
		func(Trace) bool { return true }, 0); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v", err)
	}
	// Impossible conditioning event.
	if _, err := ps.EstimateTraceConditional(func(Trace) bool { return true },
		func(Trace) bool { return false }, 10); !errors.Is(err, ErrNoHits) {
		t.Errorf("err = %v", err)
	}
}

func TestThatSampling(t *testing.T) {
	// Sampled threshold-met frequency on T-hat(9/10, 1/10) should be ≈ ε.
	sys, err := paper.That(ratutil.R(9, 10), ratutil.R(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	e := core.New(sys)
	ev, err := e.BeliefThresholdEvent(paper.ThatBitFact(), paper.AgentI, paper.ActAlpha, ratutil.R(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(sys, 9)
	est, err := s.EstimateEvent(func(r pps.RunID) bool { return ev.Contains(int(r)) }, samples)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(0.1) {
		t.Fatalf("estimate %v does not contain ε = 0.1", est)
	}
}
