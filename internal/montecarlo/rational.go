// Exact-rational Hoeffding machinery. The float64 hoeffdingRadius is
// fine for in-process cross-validation, but a radius that travels the
// wire must round-trip through JSON without drift and must be identical
// on every platform. RadiusRat therefore computes a *rational upper
// bound* on the true radius sqrt(ln(2/δ)/(2n)) using only integer
// arithmetic: ln is bounded above by an argument-reduced atanh series
// with an explicit remainder term, sqrt by an integer-sqrt ceiling.
// Over-estimating the radius only widens the interval, so soundness of
// the (ε, δ) guarantee is preserved while every byte of the wire form
// is a deterministic function of (n, δ).
package montecarlo

import (
	"fmt"
	"math/big"
)

// ln2Upper is a rational upper bound on ln 2, accurate to 1e-18:
// ln 2 = 0.693147180559945309417... < 0.693147180559945310.
var ln2Upper = big.NewRat(693147180559945310, 1e18)

var (
	ratOne = big.NewRat(1, 1)
	ratTwo = big.NewRat(2, 1)
)

// roundUpDyadic returns the smallest multiple of 2^-bits that is ≥ x
// (x must be non-negative). Dyadic rounding keeps wire strings compact:
// the raw series/sqrt bounds have huge denominators, the rounded bound
// has denominator at most 2^bits.
func roundUpDyadic(x *big.Rat, bits uint) *big.Rat {
	scale := new(big.Int).Lsh(big.NewInt(1), bits)
	num := new(big.Int).Mul(x.Num(), scale)
	q, rem := new(big.Int).QuoRem(num, x.Denom(), new(big.Int))
	if rem.Sign() != 0 {
		q.Add(q, big.NewInt(1))
	}
	return new(big.Rat).SetFrac(q, scale)
}

// lnUpper returns a rational upper bound on ln x for x ≥ 1, rounded up
// to 2^-48 granularity. Argument reduction writes x = 2^m · r with
// r ∈ [1, 2), so ln x = m·ln2 + ln r; ln r comes from the atanh series
// ln r = 2·Σ y^(2k+1)/(2k+1) with y = (r-1)/(r+1) ∈ [0, 1/3), truncated
// with an explicit geometric remainder bound added back on top.
func lnUpper(x *big.Rat) *big.Rat {
	r := new(big.Rat).Set(x)
	m := int64(0)
	for r.Cmp(ratTwo) >= 0 {
		r.Quo(r, ratTwo)
		m++
	}
	y := new(big.Rat).Sub(r, ratOne)
	y.Quo(y, new(big.Rat).Add(r, ratOne))
	y2 := new(big.Rat).Mul(y, y)
	sum := new(big.Rat)
	term := new(big.Rat).Set(y) // y^(2k+1)
	tol := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 64))
	for k := int64(0); term.Sign() > 0; k++ {
		sum.Add(sum, new(big.Rat).Quo(term, big.NewRat(2*k+1, 1)))
		term.Mul(term, y2)
		if term.Cmp(tol) < 0 {
			break
		}
	}
	// Tail bound: Σ_{j>k} y^(2j+1)/(2j+1) ≤ y^(2k+3) · Σ_j y^(2j)
	//           = term / (1 - y²), with term = y^(2k+3) after the loop.
	sum.Add(sum, new(big.Rat).Quo(term, new(big.Rat).Sub(ratOne, y2)))
	sum.Mul(sum, ratTwo)
	if m > 0 {
		sum.Add(sum, new(big.Rat).Mul(big.NewRat(m, 1), ln2Upper))
	}
	return roundUpDyadic(sum, 48)
}

// sqrtUpper returns a rational upper bound on sqrt(x) for x ≥ 0:
// sqrt(a/b) ≤ ⌈sqrt(a·b)⌉ / b, with the integer square-root ceiling
// taken via big.Int.Sqrt.
func sqrtUpper(x *big.Rat) *big.Rat {
	if x.Sign() <= 0 {
		return new(big.Rat)
	}
	ab := new(big.Int).Mul(x.Num(), x.Denom())
	s := new(big.Int).Sqrt(ab)
	if new(big.Int).Mul(s, s).Cmp(ab) < 0 {
		s.Add(s, big.NewInt(1))
	}
	return new(big.Rat).SetFrac(s, x.Denom())
}

// validDelta reports whether delta is a usable confidence parameter.
func validDelta(delta *big.Rat) bool {
	return delta != nil && delta.Sign() > 0 && delta.Cmp(ratOne) < 0
}

// RadiusRat returns a deterministic rational upper bound on the
// two-sided Hoeffding radius sqrt(ln(2/δ)/(2n)) at confidence 1-δ,
// rounded up to 2^-30 granularity and clamped to 1 (a radius beyond 1
// is vacuous for values in [0, 1]). The bound errs only upward, so an
// interval built from it still covers the true value with probability
// at least 1-δ; and being a pure function of (n, δ) in integer
// arithmetic, it is byte-identical across platforms and round-trips
// through its RatString form losslessly. For n ≤ 0 or a degenerate δ it
// returns the trivial radius 1.
func RadiusRat(n int, delta *big.Rat) *big.Rat {
	if n <= 0 || !validDelta(delta) {
		return new(big.Rat).Set(ratOne)
	}
	l := lnUpper(new(big.Rat).Quo(ratTwo, delta))
	l.Quo(l, big.NewRat(2*int64(n), 1))
	r := roundUpDyadic(sqrtUpper(l), 30)
	if r.Cmp(ratOne) > 0 {
		return new(big.Rat).Set(ratOne)
	}
	return r
}

// maxSampleSize caps the budget SampleSize will derive; beyond this the
// request is a mistake (or an overflow), not a sampling plan.
const maxSampleSize = 1 << 31

// SampleSize returns the Hoeffding sample complexity ⌈ln(2/δ)/(2ε²)⌉:
// the number of samples after which the (rational-bound) radius at
// confidence 1-δ is at most ε. Like RadiusRat it uses the upper ln
// bound, so the returned n satisfies RadiusRat(n, δ) ≈≤ ε while never
// under-sampling.
func SampleSize(eps, delta *big.Rat) (int, error) {
	if eps == nil || eps.Sign() <= 0 || eps.Cmp(ratOne) >= 0 {
		return 0, fmt.Errorf("montecarlo: eps must be in (0,1), got %s", ratString(eps))
	}
	if !validDelta(delta) {
		return 0, fmt.Errorf("montecarlo: delta must be in (0,1), got %s", ratString(delta))
	}
	l := lnUpper(new(big.Rat).Quo(ratTwo, delta))
	l.Quo(l, new(big.Rat).Mul(ratTwo, new(big.Rat).Mul(eps, eps)))
	// ceil(l) for positive l.
	n := new(big.Int).Div(l.Num(), l.Denom())
	if new(big.Int).Mul(n, l.Denom()).Cmp(l.Num()) < 0 {
		n.Add(n, big.NewInt(1))
	}
	if !n.IsInt64() || n.Int64() > maxSampleSize {
		return 0, fmt.Errorf("montecarlo: (eps=%s, delta=%s) needs %s samples, beyond the %d cap",
			eps.RatString(), delta.RatString(), n.String(), maxSampleSize)
	}
	if n.Int64() < 1 {
		return 1, nil
	}
	return int(n.Int64()), nil
}

func ratString(x *big.Rat) string {
	if x == nil {
		return "<nil>"
	}
	return x.RatString()
}

// EstimateRat is the exact-rational form of a sampled estimate: the
// point frequency and a Hoeffding interval whose every component is a
// rational with a canonical string form, so the estimate serializes to
// the wire and back without float drift.
type EstimateRat struct {
	// P is the exact point estimate (hits/n, or a rational mean).
	P *big.Rat
	// Radius is the rational upper bound on the Hoeffding radius at the
	// estimate's confidence level.
	Radius *big.Rat
	// Lo and Hi are the interval endpoints clamped to [0, 1]: with
	// probability at least 1-δ the true value lies in [Lo, Hi].
	Lo, Hi *big.Rat
	// N is the number of (conditioning) samples behind P.
	N int
}

// NewEstimateRat builds the estimate for hits successes out of n
// conditioning samples at confidence 1-delta. With n == 0 the
// conditioning event was never sampled and the estimate degenerates to
// the trivially sound "no information" interval 1/2 ± 1/2 = [0, 1].
func NewEstimateRat(hits, n int, delta *big.Rat) EstimateRat {
	if n <= 0 {
		return NewEstimateRatMean(nil, 0, delta)
	}
	return NewEstimateRatMean(big.NewRat(int64(hits), int64(n)), n, delta)
}

// NewEstimateRatMean builds the estimate around an exact rational mean
// p of n samples of a [0, 1]-valued variable (Hoeffding's inequality
// covers bounded means, not just frequencies). A nil p or n ≤ 0 yields
// the trivial [0, 1] interval.
func NewEstimateRatMean(p *big.Rat, n int, delta *big.Rat) EstimateRat {
	if p == nil || n <= 0 {
		half := big.NewRat(1, 2)
		return EstimateRat{
			P:      new(big.Rat).Set(half),
			Radius: new(big.Rat).Set(half),
			Lo:     new(big.Rat),
			Hi:     new(big.Rat).Set(ratOne),
			N:      0,
		}
	}
	e := EstimateRat{P: new(big.Rat).Set(p), Radius: RadiusRat(n, delta), N: n}
	e.Lo = new(big.Rat).Sub(e.P, e.Radius)
	if e.Lo.Sign() < 0 {
		e.Lo.SetInt64(0)
	}
	e.Hi = new(big.Rat).Add(e.P, e.Radius)
	if e.Hi.Cmp(ratOne) > 0 {
		e.Hi.Set(ratOne)
	}
	return e
}

// Contains reports whether the exact value v lies within [Lo, Hi].
func (e EstimateRat) Contains(v *big.Rat) bool {
	return v != nil && v.Cmp(e.Lo) >= 0 && v.Cmp(e.Hi) <= 0
}

// String renders the estimate in its exact wire form.
func (e EstimateRat) String() string {
	return fmt.Sprintf("%s ∈ [%s, %s] (n=%d)", e.P.RatString(), e.Lo.RatString(), e.Hi.RatString(), e.N)
}
