package montecarlo

import (
	"encoding/json"
	"math"
	"math/big"
	"testing"
)

// TestRadiusRatPinned pins the exact wire bytes of the rational
// Hoeffding radius. These strings ARE the wire format (estimates
// serialize via RatString), so any diff here is a cross-version wire
// break and must be a deliberate, reviewed change.
func TestRadiusRatPinned(t *testing.T) {
	cases := []struct {
		n     int
		delta *big.Rat
		want  string
	}{
		{100, big.NewRat(1, 100), "174764757/1073741824"},
		{1000, big.NewRat(1, 100), "55265469/1073741824"},
		{64, big.NewRat(1, 20), "45570325/268435456"},
		{256, big.NewRat(1, 1000), "130827027/1073741824"},
		{1, big.NewRat(1, 2), "893948707/1073741824"},
		{10000, big.NewRat(1, 100), "4369119/268435456"},
		// Degenerate inputs: the trivial radius.
		{0, big.NewRat(1, 100), "1"},
		{-3, big.NewRat(1, 100), "1"},
		{100, nil, "1"},
		{100, big.NewRat(2, 1), "1"},
	}
	for _, c := range cases {
		if got := RadiusRat(c.n, c.delta).RatString(); got != c.want {
			t.Errorf("RadiusRat(%d, %v) = %s, want %s", c.n, c.delta, got, c.want)
		}
	}
}

// TestRadiusRatSoundAndTight: the rational radius must upper-bound the
// true radius (soundness: the interval may only widen) while staying
// within a sliver of it (usefulness: the dyadic and series round-ups
// cost well under 1e-8 absolute).
func TestRadiusRatSoundAndTight(t *testing.T) {
	deltas := []*big.Rat{big.NewRat(1, 2), big.NewRat(1, 20), big.NewRat(1, 100), big.NewRat(1, 1000), big.NewRat(3, 7)}
	for _, delta := range deltas {
		df, _ := delta.Float64()
		for _, n := range []int{1, 2, 3, 10, 100, 1000, 65536, 1 << 20} {
			truth := math.Sqrt(math.Log(2/df) / (2 * float64(n)))
			got, _ := RadiusRat(n, delta).Float64()
			if truth > 1 {
				truth = 1
			}
			if got < truth-1e-15 {
				t.Errorf("RadiusRat(%d, %s) = %.12f under-estimates true radius %.12f", n, delta.RatString(), got, truth)
			}
			if got > truth+1e-8 {
				t.Errorf("RadiusRat(%d, %s) = %.12f is loose vs true radius %.12f", n, delta.RatString(), got, truth)
			}
		}
	}
}

// TestRadiusRatRoundTrips: the radius must survive the wire. RatString
// is the serialization used by EstimateDoc, so parse(format(r)) == r.
func TestRadiusRatRoundTrips(t *testing.T) {
	r := RadiusRat(1060, big.NewRat(1, 100))
	s := r.RatString()
	back, ok := new(big.Rat).SetString(s)
	if !ok || back.Cmp(r) != 0 {
		t.Fatalf("RatString round trip lost precision: %s -> %v", s, back)
	}
	// And through JSON, the way the service ships it.
	var boxed string
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &boxed); err != nil {
		t.Fatal(err)
	}
	if boxed != s {
		t.Fatalf("JSON round trip drifted: %q -> %q", s, boxed)
	}
}

func TestSampleSize(t *testing.T) {
	cases := []struct {
		eps, delta *big.Rat
		want       int
	}{
		{big.NewRat(1, 20), big.NewRat(1, 100), 1060},
		{big.NewRat(1, 10), big.NewRat(1, 20), 185},
		{big.NewRat(1, 100), big.NewRat(1, 100), 26492},
	}
	for _, c := range cases {
		n, err := SampleSize(c.eps, c.delta)
		if err != nil {
			t.Fatalf("SampleSize(%s, %s): %v", c.eps.RatString(), c.delta.RatString(), err)
		}
		if n != c.want {
			t.Errorf("SampleSize(%s, %s) = %d, want %d", c.eps.RatString(), c.delta.RatString(), n, c.want)
		}
		// The derived budget must actually achieve the target half-width.
		if r := RadiusRat(n, c.delta); r.Cmp(c.eps) > 0 {
			t.Errorf("RadiusRat(%d, %s) = %s exceeds eps %s", n, c.delta.RatString(), r.RatString(), c.eps.RatString())
		}
	}

	for _, bad := range []struct{ eps, delta *big.Rat }{
		{nil, big.NewRat(1, 100)},
		{big.NewRat(0, 1), big.NewRat(1, 100)},
		{big.NewRat(1, 1), big.NewRat(1, 100)},
		{big.NewRat(1, 20), nil},
		{big.NewRat(1, 20), big.NewRat(1, 1)},
		{big.NewRat(1, 1000000), big.NewRat(1, 100)}, // over the derived-budget cap
	} {
		if _, err := SampleSize(bad.eps, bad.delta); err == nil {
			t.Errorf("SampleSize(%v, %v) accepted invalid parameters", bad.eps, bad.delta)
		}
	}
}

func TestEstimateRat(t *testing.T) {
	delta := big.NewRat(1, 100)
	e := NewEstimateRat(30, 100, delta)
	if got := e.P.RatString(); got != "3/10" {
		t.Fatalf("P = %s, want 3/10", got)
	}
	if e.N != 100 {
		t.Fatalf("N = %d, want 100", e.N)
	}
	if want := RadiusRat(100, delta); e.Radius.Cmp(want) != 0 {
		t.Fatalf("Radius = %s, want %s", e.Radius.RatString(), want.RatString())
	}
	if lo := new(big.Rat).Sub(e.P, e.Radius); e.Lo.Cmp(lo) != 0 {
		t.Fatalf("Lo = %s, want P-Radius = %s", e.Lo.RatString(), lo.RatString())
	}
	if !e.Contains(big.NewRat(3, 10)) || !e.Contains(e.Lo) || !e.Contains(e.Hi) {
		t.Fatal("interval must contain its point estimate and both endpoints")
	}
	if e.Contains(nil) {
		t.Fatal("nil value must not be 'contained'")
	}

	// Clamping: an estimate near the boundary keeps [Lo, Hi] ⊆ [0, 1].
	edge := NewEstimateRat(0, 100, delta)
	if edge.Lo.Sign() != 0 {
		t.Fatalf("Lo = %s, want clamped to 0", edge.Lo.RatString())
	}
	full := NewEstimateRat(100, 100, delta)
	if full.Hi.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("Hi = %s, want clamped to 1", full.Hi.RatString())
	}

	// n == 0: the trivially sound "no information" interval [0, 1].
	empty := NewEstimateRat(0, 0, delta)
	if empty.Lo.Sign() != 0 || empty.Hi.Cmp(big.NewRat(1, 1)) != 0 || empty.N != 0 {
		t.Fatalf("empty estimate = %v, want 1/2 ± 1/2 over [0,1]", empty)
	}
	if empty.P.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("empty P = %s, want 1/2", empty.P.RatString())
	}

	// The mean form: Hoeffding covers [0,1]-valued means, not just
	// frequencies.
	mean := NewEstimateRatMean(big.NewRat(5, 8), 64, big.NewRat(1, 20))
	if mean.P.RatString() != "5/8" || mean.N != 64 {
		t.Fatalf("mean estimate = %v", mean)
	}
	if want := RadiusRat(64, big.NewRat(1, 20)); mean.Radius.Cmp(want) != 0 {
		t.Fatalf("mean Radius = %s, want %s", mean.Radius.RatString(), want.RatString())
	}
}

// TestModelSamplerEquivalence: a Sampler derived from a shared Model
// must sample the identical run sequence as the compat NewSampler path,
// and two Samplers over one Model must not perturb each other.
func TestModelSamplerEquivalence(t *testing.T) {
	sys := fsSystem(t)
	model := NewModel(sys)
	a := NewSampler(sys, 42)
	b := model.Sampler(42)
	c := model.Sampler(7) // interleaved third cursor must not disturb b
	for i := 0; i < 200; i++ {
		ra, rb := a.SampleRun(), b.SampleRun()
		c.SampleRun()
		if ra != rb {
			t.Fatalf("sample %d: NewSampler drew run %d, Model.Sampler drew %d", i, ra, rb)
		}
	}
}
