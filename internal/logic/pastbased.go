package logic

// PastBased reports whether every fact matching this spec is past-based
// in the paper's sense: its truth value at a point (r, t) is a function
// of the run's prefix through time t alone — equivalently, of the tree
// node the point sits at — never of how the run continues.
//
// The judgement is structural and conservative. Leaf operators that
// read only the current point (local state, environment state, clock)
// are past-based; so are "believes" and "knows" unconditionally,
// because belief and knowledge at (r, t) are functions of the agent's
// local state there regardless of what the inner fact talks about.
// Connectives and backward-looking temporal operators (not, and, or,
// once, soFar) preserve past-basedness of their operands. Everything
// that can read the future — "does" (the action taken on the edge
// leaving the point), sometime/always, eventually/henceforth, atTime —
// reports false even when a particular system would make it
// prefix-determined.
//
// The LP backend (internal/lpengine) uses this gate: past-based facts
// take one value per tree node, which is what lets it evaluate a fact
// once per world-column instead of once per run.
func (s FactSpec) PastBased() bool {
	switch s.Op {
	case "true", "false", "localIs", "localContains", "envIs", "timeIs",
		"believes", "knows":
		return true
	case "not", "once", "soFar":
		return s.Arg != nil && s.Arg.PastBased()
	case "and", "or":
		for _, a := range s.Args {
			if !a.PastBased() {
				return false
			}
		}
		return true
	default:
		return false
	}
}
