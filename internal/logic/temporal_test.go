package logic

import (
	"testing"

	"pak/internal/pps"
	"pak/internal/ratutil"
)

// chain builds a single-run, three-step system with distinct env states
// e0, e1, e2, e3 at times 0..3.
func chain(t *testing.T) *pps.System {
	t.Helper()
	b := pps.NewBuilder("i")
	n := b.Init(ratutil.One(), "e0", "l0")
	for k := 1; k <= 3; k++ {
		n = b.Child(n, pps.Step{Pr: ratutil.One(), Acts: []string{"a"},
			Env: "e" + string(rune('0'+k)), Locals: []string{"l" + string(rune('0'+k))}})
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAtTime(t *testing.T) {
	sys := chain(t)
	f := AtTime(2, EnvIs("e2"))
	// Run-based: holds at every point of the run.
	for tt := 0; tt < 4; tt++ {
		if !f.Holds(sys, 0, tt) {
			t.Errorf("AtTime(2, e2) should hold at t=%d", tt)
		}
	}
	if AtTime(2, EnvIs("e0")).Holds(sys, 0, 0) {
		t.Error("AtTime(2, e0) should not hold")
	}
	// Out-of-range times are false, not a panic.
	if AtTime(99, True()).Holds(sys, 0, 0) {
		t.Error("AtTime beyond run end should be false")
	}
	if AtTime(-1, True()).Holds(sys, 0, 0) {
		t.Error("AtTime(-1) should be false")
	}
	if !IsRunBased(sys, f) {
		t.Error("AtTime facts are run-based")
	}
}

func TestOnceAndSoFar(t *testing.T) {
	sys := chain(t)
	sawE1 := Once(EnvIs("e1"))
	tests := []struct {
		t    int
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, true},
	}
	for _, tt := range tests {
		if got := sawE1.Holds(sys, 0, tt.t); got != tt.want {
			t.Errorf("Once(e1) at t=%d = %v, want %v", tt.t, got, tt.want)
		}
	}

	notE3 := SoFar(Not(EnvIs("e3")))
	for _, tt := range []struct {
		t    int
		want bool
	}{{0, true}, {2, true}, {3, false}} {
		if got := notE3.Holds(sys, 0, tt.t); got != tt.want {
			t.Errorf("SoFar(¬e3) at t=%d = %v, want %v", tt.t, got, tt.want)
		}
	}

	// Past operators over past-based facts stay past-based.
	if !IsPastBased(sys, sawE1) || !IsPastBased(sys, notE3) {
		t.Error("Once/SoFar of past-based facts should be past-based")
	}
}

func TestEventuallyHenceforth(t *testing.T) {
	sys := chain(t)
	ev := Eventually(EnvIs("e3"))
	for _, tt := range []struct {
		t    int
		want bool
	}{{0, true}, {3, true}} {
		if got := ev.Holds(sys, 0, tt.t); got != tt.want {
			t.Errorf("Eventually(e3) at t=%d = %v, want %v", tt.t, got, tt.want)
		}
	}
	if Eventually(EnvIs("e1")).Holds(sys, 0, 2) {
		t.Error("Eventually(e1) at t=2 should be false (e1 is in the past)")
	}

	hf := Henceforth(Not(EnvIs("e0")))
	if !hf.Holds(sys, 0, 1) || hf.Holds(sys, 0, 0) {
		t.Error("Henceforth wrong")
	}
}

// branching system: at t0 a coin decides the branch; Eventually of a
// branch-dependent fact must NOT be past-based at the shared prefix.
func TestEventuallyNotPastBased(t *testing.T) {
	b := pps.NewBuilder("i")
	g := b.Init(ratutil.One(), "e", "l0")
	b.Child(g, pps.Step{Pr: ratutil.R(1, 2), Acts: []string{"a"}, Env: "win", Locals: []string{"l1"}})
	b.Child(g, pps.Step{Pr: ratutil.R(1, 2), Acts: []string{"b"}, Env: "lose", Locals: []string{"l1"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := Eventually(EnvIs("win"))
	if IsPastBased(sys, f) {
		t.Error("Eventually of branch-dependent fact should not be past-based")
	}
	if !IsPastBased(sys, Once(EnvIs("win"))) {
		t.Error("Once should be past-based")
	}
}

func TestDoesAny(t *testing.T) {
	sys := chain(t)
	if !DoesAny("i", "x", "a", "y").Holds(sys, 0, 0) {
		t.Error("DoesAny should hold when one alternative matches")
	}
	if DoesAny("i", "x", "y").Holds(sys, 0, 0) {
		t.Error("DoesAny should fail when none match")
	}
	if DoesAny("i").Holds(sys, 0, 0) {
		t.Error("empty DoesAny is false")
	}
}

func TestTemporalStrings(t *testing.T) {
	tests := []struct {
		f    Fact
		want string
	}{
		{AtTime(2, True()), "@2(true)"},
		{Once(True()), "⟐(true)"},
		{SoFar(True()), "⟞(true)"},
		{Eventually(True()), "◇≥(true)"},
		{Henceforth(True()), "□≥(true)"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
