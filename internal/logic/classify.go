package logic

import (
	"pak/internal/pps"
	"pak/internal/runset"
)

// Semantic classifiers. The paper's Lemma 4.3 gives two sufficient
// conditions for local-state independence: the action is deterministic, or
// the fact is past-based. These functions decide the relevant semantic
// properties of a fact by exhaustive evaluation over the (finite) system.

// IsRunBased reports whether f is a fact about runs in sys: for every run
// r and all times t, t', (sys, r, t) |= f iff (sys, r, t') |= f.
func IsRunBased(sys *pps.System, f Fact) bool {
	for r := 0; r < sys.NumRuns(); r++ {
		run := pps.RunID(r)
		first := f.Holds(sys, run, 0)
		for t := 1; t < sys.RunLen(run); t++ {
			if f.Holds(sys, run, t) != first {
				return false
			}
		}
	}
	return true
}

// IsPastBased reports whether f is past-based in sys: whenever two runs
// agree up to time t (equivalently, pass through the same tree node at
// time t), f has the same truth value at time t in both. Facts about the
// current global state, such as "A is attacking" or "the critical section
// is empty", are past-based (paper, Section 4).
func IsPastBased(sys *pps.System, f Fact) bool {
	// Two runs agree up to time t iff they share the node at time t, so f
	// is past-based iff its value at time t is a function of the node.
	type verdict struct {
		seen bool
		val  bool
	}
	byNode := make(map[pps.NodeID]verdict)
	for r := 0; r < sys.NumRuns(); r++ {
		run := pps.RunID(r)
		for t := 0; t < sys.RunLen(run); t++ {
			node := sys.NodeAt(run, t)
			val := f.Holds(sys, run, t)
			if v, ok := byNode[node]; ok {
				if v.val != val {
					return false
				}
				continue
			}
			byNode[node] = verdict{seen: true, val: val}
		}
	}
	return true
}

// RunsSatisfying returns the event of runs r with (sys, r) |= f, treating
// f as a fact about runs evaluated at time 0. For genuinely run-based
// facts the choice of time is immaterial; for transient facts the caller
// should lift with Sometime or Always first.
func RunsSatisfying(sys *pps.System, f Fact) *runset.Set {
	return sys.RunsWhere(func(r pps.RunID) bool {
		return f.Holds(sys, r, 0)
	})
}

// PointsSatisfying returns, for each run, the sorted times at which f
// holds. It is useful for debugging and for displaying where a transient
// fact is true.
func PointsSatisfying(sys *pps.System, f Fact) map[pps.RunID][]int {
	out := make(map[pps.RunID][]int)
	for r := 0; r < sys.NumRuns(); r++ {
		run := pps.RunID(r)
		for t := 0; t < sys.RunLen(run); t++ {
			if f.Holds(sys, run, t) {
				out[run] = append(out[run], t)
			}
		}
	}
	return out
}
