package logic

import (
	"strings"
	"testing"

	"pak/internal/pps"
	"pak/internal/ratutil"
)

// diamond reproduces the paper's Figure 1 system: one agent i at initial
// state g0 performing α or α' with probability 1/2 each.
func diamond(t *testing.T) *pps.System {
	t.Helper()
	b := pps.NewBuilder("i")
	g0 := b.Init(ratutil.One(), "e0", "g0")
	b.Child(g0, pps.Step{Pr: ratutil.R(1, 2), Acts: []string{"alpha"}, Env: "e1", Locals: []string{"g1"}})
	b.Child(g0, pps.Step{Pr: ratutil.R(1, 2), Acts: []string{"alpha'"}, Env: "e1", Locals: []string{"g1"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys
}

// twoAgent builds a 2-agent, 2-round system in which agent j's initial bit
// is 0 or 1 and i observes a message about it in round 1.
func twoAgent(t *testing.T) *pps.System {
	t.Helper()
	b := pps.NewBuilder("i", "j")
	s0 := b.Init(ratutil.R(1, 2), "bit=0", "i0", "j:bit=0")
	s1 := b.Init(ratutil.R(1, 2), "bit=1", "i0", "j:bit=1")
	b.Child(s0, pps.Step{Pr: ratutil.One(), Acts: []string{"noop", "send0"},
		Env: "bit=0", Locals: []string{"i:got0", "j1:bit=0"}})
	b.Child(s1, pps.Step{Pr: ratutil.One(), Acts: []string{"noop", "send1"},
		Env: "bit=1", Locals: []string{"i:got1", "j1:bit=1"}})
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys
}

func TestConstants(t *testing.T) {
	sys := diamond(t)
	if !True().Holds(sys, 0, 0) {
		t.Error("True should hold")
	}
	if False().Holds(sys, 0, 0) {
		t.Error("False should not hold")
	}
}

func TestDoes(t *testing.T) {
	sys := diamond(t)
	f := Does("i", "alpha")
	if !f.Holds(sys, 0, 0) {
		t.Error("does_i(alpha) should hold at (r0, 0)")
	}
	if f.Holds(sys, 1, 0) {
		t.Error("does_i(alpha) should not hold at (r1, 0)")
	}
	// At the final point no action is performed.
	if f.Holds(sys, 0, 1) {
		t.Error("does_i(alpha) should not hold at a final point")
	}
	if got := f.String(); got != "does_i(alpha)" {
		t.Errorf("String = %q", got)
	}
}

func TestDoesUnknownAgentPanics(t *testing.T) {
	sys := diamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown agent did not panic")
		}
	}()
	Does("nobody", "alpha").Holds(sys, 0, 0)
}

func TestLocalFacts(t *testing.T) {
	sys := twoAgent(t)
	tests := []struct {
		name string
		f    Fact
		r    pps.RunID
		t    int
		want bool
	}{
		{"LocalIs true", LocalIs("i", "i0"), 0, 0, true},
		{"LocalIs false", LocalIs("i", "i0"), 0, 1, false},
		{"LocalContains j bit", LocalContains("j", "bit=1"), 1, 0, true},
		{"LocalContains other run", LocalContains("j", "bit=1"), 0, 0, false},
		{"LocalPred", LocalPred("i", "nonempty", func(l string) bool { return l != "" }), 0, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Holds(sys, tt.r, tt.t); got != tt.want {
				t.Fatalf("Holds = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEnvFacts(t *testing.T) {
	sys := twoAgent(t)
	if !EnvIs("bit=0").Holds(sys, 0, 0) {
		t.Error("EnvIs(bit=0) should hold in run 0")
	}
	if EnvIs("bit=0").Holds(sys, 1, 0) {
		t.Error("EnvIs(bit=0) should not hold in run 1")
	}
	pred := EnvPred("hasBit", func(e string) bool { return strings.HasPrefix(e, "bit=") })
	if !pred.Holds(sys, 0, 1) {
		t.Error("EnvPred should hold")
	}
}

func TestTimeIs(t *testing.T) {
	sys := diamond(t)
	if !TimeIs(0).Holds(sys, 0, 0) || TimeIs(0).Holds(sys, 0, 1) {
		t.Error("TimeIs wrong")
	}
}

func TestBooleanCombinators(t *testing.T) {
	sys := diamond(t)
	p := True()
	q := False()
	tests := []struct {
		name string
		f    Fact
		want bool
	}{
		{"Not true", Not(p), false},
		{"Not false", Not(q), true},
		{"And empty", And(), true},
		{"And tf", And(p, q), false},
		{"And tt", And(p, p), true},
		{"Or empty", Or(), false},
		{"Or tf", Or(p, q), true},
		{"Or ff", Or(q, q), false},
		{"Implies ft", Implies(q, p), true},
		{"Implies tf", Implies(p, q), false},
		{"Iff tt", Iff(p, p), true},
		{"Iff tf", Iff(p, q), false},
		{"Iff ff", Iff(q, q), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Holds(sys, 0, 0); got != tt.want {
				t.Fatalf("Holds = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		f    Fact
		want string
	}{
		{And(), "true"},
		{Or(), "false"},
		{Not(True()), "¬(true)"},
		{And(True(), False()), "(true) ∧ (false)"},
		{Sometime(Does("i", "a")), "◇(does_i(a))"},
		{Always(True()), "□(true)"},
		{TimeIs(2), "time=2"},
		{EnvIs("x"), `env="x"`},
		{LocalIs("i", "l"), `local_i="l"`},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestSometimeAlways(t *testing.T) {
	sys := diamond(t)
	// does_i(alpha) holds at t0 of run 0 only; Sometime lifts it to the run.
	st := Sometime(Does("i", "alpha"))
	if !st.Holds(sys, 0, 0) || !st.Holds(sys, 0, 1) {
		t.Error("Sometime should hold at every point of run 0")
	}
	if st.Holds(sys, 1, 0) {
		t.Error("Sometime should not hold in run 1")
	}
	al := Always(LocalIs("i", "g0"))
	if al.Holds(sys, 0, 0) {
		t.Error("Always(local=g0) should fail (local changes at t1)")
	}
	if !Always(True()).Holds(sys, 0, 0) {
		t.Error("Always(true) should hold")
	}
}

func TestPerformedHasLocal(t *testing.T) {
	sys := diamond(t)
	if !Performed("i", "alpha").Holds(sys, 0, 1) {
		t.Error("Performed(alpha) should hold in run 0")
	}
	if Performed("i", "alpha").Holds(sys, 1, 0) {
		t.Error("Performed(alpha) should not hold in run 1")
	}
	if !HasLocal("i", "g0").Holds(sys, 0, 1) {
		t.Error("HasLocal(g0) should hold")
	}
	if HasLocal("i", "zzz").Holds(sys, 0, 0) {
		t.Error("HasLocal(zzz) should not hold")
	}
}

func TestIsRunBased(t *testing.T) {
	sys := diamond(t)
	tests := []struct {
		name string
		f    Fact
		want bool
	}{
		{"Performed is run-based", Performed("i", "alpha"), true},
		{"Sometime is run-based", Sometime(LocalIs("i", "g1")), true},
		{"Always is run-based", Always(True()), true},
		{"Does is transient", Does("i", "alpha"), false},
		{"TimeIs is transient", TimeIs(0), false},
		{"constant true is run-based", True(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsRunBased(sys, tt.f); got != tt.want {
				t.Fatalf("IsRunBased = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsPastBased(t *testing.T) {
	sys := diamond(t)
	tests := []struct {
		name string
		f    Fact
		want bool
	}{
		// The Figure 1 phenomenon: whether α is performed is decided by a
		// coin flip after the shared prefix, so does_i(α) is NOT past-based.
		{"Does not past-based", Does("i", "alpha"), false},
		{"Performed not past-based", Performed("i", "alpha"), false},
		{"LocalIs past-based", LocalIs("i", "g0"), true},
		{"EnvIs past-based", EnvIs("e0"), true},
		{"TimeIs past-based", TimeIs(1), true},
		{"True past-based", True(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsPastBased(sys, tt.f); got != tt.want {
				t.Fatalf("IsPastBased = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsPastBasedTwoAgent(t *testing.T) {
	sys := twoAgent(t)
	// "bit=1" is decided at time 0, so every fact depending only on the
	// prefix is past-based, including j's local-state facts.
	if !IsPastBased(sys, LocalContains("j", "bit=1")) {
		t.Error("bit fact should be past-based")
	}
	// In this system actions are deterministic per state, so does is
	// past-based here (unlike in the diamond).
	if !IsPastBased(sys, Does("j", "send1")) {
		t.Error("deterministic does should be past-based here")
	}
}

func TestRunsSatisfying(t *testing.T) {
	sys := diamond(t)
	ev := RunsSatisfying(sys, Performed("i", "alpha"))
	if ev.Count() != 1 || !ev.Contains(0) {
		t.Fatalf("RunsSatisfying = %v", ev)
	}
	if got := sys.Measure(ev); !ratutil.Eq(got, ratutil.R(1, 2)) {
		t.Fatalf("measure = %v, want 1/2", got)
	}
}

func TestPointsSatisfying(t *testing.T) {
	sys := diamond(t)
	pts := PointsSatisfying(sys, Does("i", "alpha"))
	if len(pts) != 1 {
		t.Fatalf("PointsSatisfying = %v", pts)
	}
	if times := pts[0]; len(times) != 1 || times[0] != 0 {
		t.Fatalf("times in run 0 = %v, want [0]", times)
	}
}
