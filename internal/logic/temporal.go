package logic

import (
	"fmt"

	"pak/internal/pps"
)

// Additional temporal operators. Sometime and Always (logic.go) quantify
// over the whole run; the operators here quantify over parts of it, which
// is what conditions about protocol phases need ("a grant was issued
// before entering", "no failure after deciding"). Past-quantified facts
// built from past-based arguments remain past-based, so they compose well
// with Lemma 4.3(b).

// atTimeFact is the run-based fact "φ holds at time t0 of the current run".
type atTimeFact struct {
	t0 int
	f  Fact
}

func (f atTimeFact) Holds(sys *pps.System, r pps.RunID, _ int) bool {
	if f.t0 < 0 || f.t0 >= sys.RunLen(r) {
		return false
	}
	return f.f.Holds(sys, r, f.t0)
}

func (f atTimeFact) String() string { return fmt.Sprintf("@%d(%s)", f.t0, f.f) }

// AtTime lifts φ to the run-based fact "φ holds at time t0 of the current
// run" (false if the run ends before t0).
func AtTime(t0 int, f Fact) Fact { return atTimeFact{t0, f} }

// onceFact is "φ held at some time ≤ now" (the past temporal operator).
type onceFact struct{ f Fact }

func (f onceFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	for u := 0; u <= t && u < sys.RunLen(r); u++ {
		if f.f.Holds(sys, r, u) {
			return true
		}
	}
	return false
}

func (f onceFact) String() string { return "⟐(" + f.f.String() + ")" }

// Once returns the transient fact "φ held at some point up to and
// including the current time". If φ is past-based, Once(φ) is past-based
// too (its value depends only on the run prefix).
func Once(f Fact) Fact { return onceFact{f} }

// soFarFact is "φ held at every time ≤ now".
type soFarFact struct{ f Fact }

func (f soFarFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	for u := 0; u <= t && u < sys.RunLen(r); u++ {
		if !f.f.Holds(sys, r, u) {
			return false
		}
	}
	return true
}

func (f soFarFact) String() string { return "⟞(" + f.f.String() + ")" }

// SoFar returns the transient fact "φ held at every point up to and
// including the current time". If φ is past-based, so is SoFar(φ).
func SoFar(f Fact) Fact { return soFarFact{f} }

// eventuallyFact is "φ holds at some time ≥ now" (the future operator).
type eventuallyFact struct{ f Fact }

func (f eventuallyFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	for u := t; u < sys.RunLen(r); u++ {
		if f.f.Holds(sys, r, u) {
			return true
		}
	}
	return false
}

func (f eventuallyFact) String() string { return "◇≥(" + f.f.String() + ")" }

// Eventually returns the transient fact "φ holds at the current or a later
// point of the run". Future-quantified facts are generally NOT past-based
// even when φ is.
func Eventually(f Fact) Fact { return eventuallyFact{f} }

// henceforthFact is "φ holds at every time ≥ now".
type henceforthFact struct{ f Fact }

func (f henceforthFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	for u := t; u < sys.RunLen(r); u++ {
		if !f.f.Holds(sys, r, u) {
			return false
		}
	}
	return true
}

func (f henceforthFact) String() string { return "□≥(" + f.f.String() + ")" }

// Henceforth returns the transient fact "φ holds at the current and every
// later point of the run".
func Henceforth(f Fact) Fact { return henceforthFact{f} }

// DoesAny returns the transient fact that agent is currently performing
// one of the given actions.
func DoesAny(agent string, actions ...string) Fact {
	fs := make([]Fact, len(actions))
	for i, a := range actions {
		fs[i] = Does(agent, a)
	}
	return Or(fs...)
}
