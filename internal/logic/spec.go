package logic

// Structural fact specs: the serialization-friendly form of a fact.
// Every combinator in this package (and the epistemic operators built on
// it) can describe itself as a FactSpec tree, which internal/encode maps
// to and from the JSON fact-expression schema. Only the opaque
// escape-hatch predicates (Atom, LocalPred with an arbitrary predicate,
// EnvPred) cannot: their behaviour lives in a Go closure.

import (
	"fmt"
	"strings"
)

// FactSpec is the structural form of a serializable fact. Op names match
// the JSON schema of internal/encode (see encode.ParseFact); the other
// fields carry the operator's parameters, and Arg/Args carry subfacts.
type FactSpec struct {
	// Op is the operator name ("does", "and", "sometime", ...).
	Op string
	// Agent and Action parameterize agent/action operators.
	Agent  string
	Action string
	// Local is the localIs state; Substr is the localContains substring.
	Local  string
	Substr string
	// Env is the envIs environment state.
	Env string
	// Time is the timeIs/atTime time index.
	Time int
	// P is a probability threshold as an exact rational string
	// (epistemic believes).
	P string
	// Arg is the single subfact of unary operators.
	Arg *FactSpec
	// Args are the subfacts of variadic/binary operators.
	Args []FactSpec
}

// Speccer is implemented by facts that can report their structural form.
// The bool result is false when the fact (or one of its subfacts) is an
// opaque predicate that cannot be serialized.
type Speccer interface {
	Spec() (FactSpec, bool)
}

// SpecOf returns the structural form of f, with ok = false when f does
// not implement Speccer or contains an opaque subfact.
func SpecOf(f Fact) (FactSpec, bool) {
	s, ok := f.(Speccer)
	if !ok {
		return FactSpec{}, false
	}
	return s.Spec()
}

// specOfAll converts a subfact slice, failing if any subfact is opaque.
func specOfAll(fs []Fact) ([]FactSpec, bool) {
	out := make([]FactSpec, len(fs))
	for i, f := range fs {
		s, ok := SpecOf(f)
		if !ok {
			return nil, false
		}
		out[i] = s
	}
	return out, true
}

// specOfArg converts a single subfact for unary operators.
func specOfArg(op string, f Fact) (FactSpec, bool) {
	s, ok := SpecOf(f)
	if !ok {
		return FactSpec{}, false
	}
	return FactSpec{Op: op, Arg: &s}, true
}

func (trueFact) Spec() (FactSpec, bool)  { return FactSpec{Op: "true"}, true }
func (falseFact) Spec() (FactSpec, bool) { return FactSpec{Op: "false"}, true }

func (f doesFact) Spec() (FactSpec, bool) {
	return FactSpec{Op: "does", Agent: f.agent, Action: f.action}, true
}

func (f localIsFact) Spec() (FactSpec, bool) {
	return FactSpec{Op: "localIs", Agent: f.agent, Local: f.local}, true
}

func (f localContainsFact) Spec() (FactSpec, bool) {
	return FactSpec{Op: "localContains", Agent: f.agent, Substr: f.substr}, true
}

func (f envIsFact) Spec() (FactSpec, bool) { return FactSpec{Op: "envIs", Env: f.env}, true }

func (f timeIsFact) Spec() (FactSpec, bool) { return FactSpec{Op: "timeIs", Time: f.t0}, true }

func (f notFact) Spec() (FactSpec, bool) { return specOfArg("not", f.f) }

func (f andFact) Spec() (FactSpec, bool) {
	args, ok := specOfAll(f.fs)
	return FactSpec{Op: "and", Args: args}, ok
}

func (f orFact) Spec() (FactSpec, bool) {
	args, ok := specOfAll(f.fs)
	return FactSpec{Op: "or", Args: args}, ok
}

func (f sometimeFact) Spec() (FactSpec, bool) { return specOfArg("sometime", f.f) }
func (f alwaysFact) Spec() (FactSpec, bool)   { return specOfArg("always", f.f) }
func (f onceFact) Spec() (FactSpec, bool)     { return specOfArg("once", f.f) }
func (f soFarFact) Spec() (FactSpec, bool)    { return specOfArg("soFar", f.f) }

func (f eventuallyFact) Spec() (FactSpec, bool) { return specOfArg("eventually", f.f) }
func (f henceforthFact) Spec() (FactSpec, bool) { return specOfArg("henceforth", f.f) }

func (f atTimeFact) Spec() (FactSpec, bool) {
	s, ok := SpecOf(f.f)
	if !ok {
		return FactSpec{}, false
	}
	return FactSpec{Op: "atTime", Time: f.t0, Arg: &s}, true
}

// Key renders the spec as an unambiguous identity string for cache
// keys: every string parameter is quoted and subfacts are bracketed, so
// distinct specs never render equal (unlike display strings, where
// unquoted names such as does_a(b(c) can collide across operators).
func (s FactSpec) Key() string {
	var b strings.Builder
	s.writeKey(&b)
	return b.String()
}

func (s FactSpec) writeKey(b *strings.Builder) {
	fmt.Fprintf(b, "%s(%q,%q,%q,%q,%q,%d,%q", s.Op, s.Agent, s.Action, s.Local, s.Substr, s.Env, s.Time, s.P)
	if s.Arg != nil {
		b.WriteString(",[")
		s.Arg.writeKey(b)
		b.WriteString("]")
	}
	for _, arg := range s.Args {
		b.WriteString(",[")
		arg.writeKey(b)
		b.WriteString("]")
	}
	b.WriteString(")")
}
