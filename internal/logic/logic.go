// Package logic implements facts (events) over purely probabilistic
// systems, following Section 2.3 of the paper.
//
// A fact is identified with the set of points (r, t) at which it is true;
// we represent it as a predicate evaluated at points. Some facts are
// transient ("the critical section is currently empty"), others are facts
// about runs ("all agents decide the same value"), whose truth value is
// constant along a run. The package provides:
//
//   - primitive facts: does_i(α), local-state and environment predicates,
//     time predicates, and an escape hatch for arbitrary point predicates;
//   - boolean combinators: Not, And, Or, Implies, Iff;
//   - run-based wrappers: Sometime(φ) ("φ holds at some point of the
//     current run") and Always(φ), plus Performed(i, α) and HasLocal(i, ℓ)
//     corresponding to the paper's run-based facts α and ℓ_i;
//   - semantic classifiers: IsRunBased and IsPastBased, the properties the
//     paper's Lemma 4.3 relies on.
//
// Facts referencing an agent name that does not exist in the system under
// evaluation indicate a programming error and cause a panic.
package logic

import (
	"fmt"
	"strings"

	"pak/internal/pps"
)

// Fact is a (possibly transient) fact over a pps: a predicate on points.
// Implementations must be pure functions of the point.
type Fact interface {
	// Holds reports whether the fact is true at point (r, t) of sys,
	// i.e. (sys, r, t) |= φ.
	Holds(sys *pps.System, r pps.RunID, t int) bool
	// String renders the fact for reports and debugging.
	String() string
}

func mustAgent(sys *pps.System, name string) pps.AgentID {
	id, ok := sys.AgentIndex(name)
	if !ok {
		panic(fmt.Sprintf("logic: unknown agent %q in system %v", name, sys))
	}
	return id
}

// trueFact and falseFact are the boolean constants.
type trueFact struct{}

func (trueFact) Holds(*pps.System, pps.RunID, int) bool { return true }
func (trueFact) String() string                         { return "true" }

type falseFact struct{}

func (falseFact) Holds(*pps.System, pps.RunID, int) bool { return false }
func (falseFact) String() string                         { return "false" }

// True returns the fact that holds at every point.
func True() Fact { return trueFact{} }

// False returns the fact that holds at no point.
func False() Fact { return falseFact{} }

// doesFact is does_i(α): agent i is currently performing α.
type doesFact struct {
	agent  string
	action string
}

func (f doesFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	act, ok := sys.Action(r, t, mustAgent(sys, f.agent))
	return ok && act == f.action
}

func (f doesFact) String() string { return fmt.Sprintf("does_%s(%s)", f.agent, f.action) }

// Does returns the transient fact does_i(α): agent performs action at the
// current point (the action is recorded on the edge leaving the point).
func Does(agent, action string) Fact { return doesFact{agent, action} }

// localIsFact is the fact "agent i's local state is ℓ".
type localIsFact struct {
	agent string
	local string
}

func (f localIsFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	return sys.Local(r, t, mustAgent(sys, f.agent)) == f.local
}

func (f localIsFact) String() string { return fmt.Sprintf("local_%s=%q", f.agent, f.local) }

// LocalIs returns the transient fact that agent's local state equals local.
func LocalIs(agent, local string) Fact { return localIsFact{agent, local} }

// localPredFact applies an arbitrary predicate to an agent's local state.
type localPredFact struct {
	agent string
	name  string
	pred  func(local string) bool
}

func (f localPredFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	return f.pred(sys.Local(r, t, mustAgent(sys, f.agent)))
}

func (f localPredFact) String() string { return fmt.Sprintf("%s(local_%s)", f.name, f.agent) }

// LocalPred returns the transient fact that pred holds of agent's current
// local state; name is used for display.
func LocalPred(agent, name string, pred func(local string) bool) Fact {
	return localPredFact{agent, name, pred}
}

// localContainsFact is the fact "agent i's local state contains substr".
// Unlike the generic LocalPred it is structural, so it serializes.
type localContainsFact struct {
	agent  string
	substr string
}

func (f localContainsFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	return strings.Contains(sys.Local(r, t, mustAgent(sys, f.agent)), f.substr)
}

func (f localContainsFact) String() string {
	return fmt.Sprintf("contains(%q)(local_%s)", f.substr, f.agent)
}

// LocalContains returns the fact that agent's local state contains substr.
// It is a convenient way to express facts such as "bit = 1" when local
// states are structured strings.
func LocalContains(agent, substr string) Fact {
	return localContainsFact{agent, substr}
}

// envIsFact is the fact "the environment state is e".
type envIsFact struct{ env string }

func (f envIsFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	return sys.Env(r, t) == f.env
}

func (f envIsFact) String() string { return fmt.Sprintf("env=%q", f.env) }

// EnvIs returns the transient fact that the environment state equals env.
func EnvIs(env string) Fact { return envIsFact{env} }

// envPredFact applies an arbitrary predicate to the environment state.
type envPredFact struct {
	name string
	pred func(env string) bool
}

func (f envPredFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	return f.pred(sys.Env(r, t))
}

func (f envPredFact) String() string { return fmt.Sprintf("%s(env)", f.name) }

// EnvPred returns the transient fact that pred holds of the current
// environment state; name is used for display.
func EnvPred(name string, pred func(env string) bool) Fact {
	return envPredFact{name, pred}
}

// timeIsFact is the fact "the current time is t0".
type timeIsFact struct{ t0 int }

func (f timeIsFact) Holds(_ *pps.System, _ pps.RunID, t int) bool { return t == f.t0 }
func (f timeIsFact) String() string                               { return fmt.Sprintf("time=%d", f.t0) }

// TimeIs returns the fact that the current time equals t0. Since systems
// are synchronous, every agent always knows this fact's truth value.
func TimeIs(t0 int) Fact { return timeIsFact{t0} }

// atomFact is the generic escape hatch.
type atomFact struct {
	name string
	pred func(sys *pps.System, r pps.RunID, t int) bool
}

func (f atomFact) Holds(sys *pps.System, r pps.RunID, t int) bool { return f.pred(sys, r, t) }
func (f atomFact) String() string                                 { return f.name }

// Atom returns a fact defined by an arbitrary point predicate; name is
// used for display. The predicate must be pure.
func Atom(name string, pred func(sys *pps.System, r pps.RunID, t int) bool) Fact {
	return atomFact{name, pred}
}

// notFact negates a fact.
type notFact struct{ f Fact }

func (f notFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	return !f.f.Holds(sys, r, t)
}

func (f notFact) String() string { return "¬(" + f.f.String() + ")" }

// Not returns ¬φ.
func Not(f Fact) Fact { return notFact{f} }

// andFact is a conjunction.
type andFact struct{ fs []Fact }

func (f andFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	for _, g := range f.fs {
		if !g.Holds(sys, r, t) {
			return false
		}
	}
	return true
}

func (f andFact) String() string { return joinFacts(f.fs, " ∧ ", "true") }

// And returns the conjunction of fs (true for an empty list).
func And(fs ...Fact) Fact { return andFact{fs} }

// orFact is a disjunction.
type orFact struct{ fs []Fact }

func (f orFact) Holds(sys *pps.System, r pps.RunID, t int) bool {
	for _, g := range f.fs {
		if g.Holds(sys, r, t) {
			return true
		}
	}
	return false
}

func (f orFact) String() string { return joinFacts(f.fs, " ∨ ", "false") }

// Or returns the disjunction of fs (false for an empty list).
func Or(fs ...Fact) Fact { return orFact{fs} }

// Implies returns p → q.
func Implies(p, q Fact) Fact { return Or(Not(p), q) }

// Iff returns p ↔ q.
func Iff(p, q Fact) Fact { return And(Implies(p, q), Implies(q, p)) }

func joinFacts(fs []Fact, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// sometimeFact is the run-based fact "φ holds at some point of the run".
type sometimeFact struct{ f Fact }

func (f sometimeFact) Holds(sys *pps.System, r pps.RunID, _ int) bool {
	for t := 0; t < sys.RunLen(r); t++ {
		if f.f.Holds(sys, r, t) {
			return true
		}
	}
	return false
}

func (f sometimeFact) String() string { return "◇(" + f.f.String() + ")" }

// Sometime lifts a transient fact φ to the fact about runs "φ holds at
// some point of the current run" (paper, Section 2.3).
func Sometime(f Fact) Fact { return sometimeFact{f} }

// alwaysFact is the run-based fact "φ holds at every point of the run".
type alwaysFact struct{ f Fact }

func (f alwaysFact) Holds(sys *pps.System, r pps.RunID, _ int) bool {
	for t := 0; t < sys.RunLen(r); t++ {
		if !f.f.Holds(sys, r, t) {
			return false
		}
	}
	return true
}

func (f alwaysFact) String() string { return "□(" + f.f.String() + ")" }

// Always lifts a transient fact φ to the fact about runs "φ holds at every
// point of the current run".
func Always(f Fact) Fact { return alwaysFact{f} }

// Performed returns the run-based fact the paper writes simply as α: agent
// performs action at some point of the current run.
func Performed(agent, action string) Fact { return Sometime(Does(agent, action)) }

// HasLocal returns the run-based fact the paper writes as ℓ_i: agent is in
// local state local at some point of the current run.
func HasLocal(agent, local string) Fact { return Sometime(LocalIs(agent, local)) }
