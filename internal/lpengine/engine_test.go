package lpengine_test

import (
	"errors"
	"fmt"
	"math/big"
	"testing"

	"pak/internal/core"
	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/lpengine"
	"pak/internal/pps"
	"pak/internal/randsys"
	"pak/internal/ratutil"
	"pak/internal/scenarios"
)

// diffEngines holds the two backends to identical answers — equal
// rationals, equal witness sets, and identical error strings — on every
// belief-bound method, for one (system, fact) pair.
func diffEngines(t *testing.T, sys *pps.System, f logic.Fact, agent, action string, locals []string) {
	t.Helper()
	en := core.New(sys)
	lp := lpengine.New(sys)

	sameErr := func(what string, a, b error) bool {
		t.Helper()
		if (a == nil) != (b == nil) {
			t.Fatalf("%s: enum err %v, lp err %v", what, a, b)
		}
		if a != nil && a.Error() != b.Error() {
			t.Fatalf("%s: enum err %q, lp err %q", what, a, b)
		}
		return a == nil
	}

	for _, local := range locals {
		what := fmt.Sprintf("Belief(%s, %s, %q)", f, agent, local)
		want, wantErr := en.Belief(f, agent, local)
		got, gotErr := lp.Belief(f, agent, local)
		if sameErr(what, wantErr, gotErr) && want.Cmp(got) != 0 {
			t.Fatalf("%s: enum %s, lp %s", what, want.RatString(), got.RatString())
		}
	}

	wantBy, wantErr := en.BeliefByActionState(f, agent, action)
	gotBy, gotErr := lp.BeliefByActionState(f, agent, action)
	if sameErr("BeliefByActionState", wantErr, gotErr) {
		if len(wantBy) != len(gotBy) {
			t.Fatalf("BeliefByActionState: enum %d states, lp %d", len(wantBy), len(gotBy))
		}
		for local, want := range wantBy {
			if got, ok := gotBy[local]; !ok || want.Cmp(got) != 0 {
				t.Fatalf("BeliefByActionState[%q]: enum %s, lp %v", local, want.RatString(), got)
			}
		}
	}

	wantMu, wantErr := en.ConstraintProb(f, agent, action)
	gotMu, gotErr := lp.ConstraintProb(f, agent, action)
	if sameErr("ConstraintProb", wantErr, gotErr) && wantMu.Cmp(gotMu) != 0 {
		t.Fatalf("ConstraintProb: enum %s, lp %s", wantMu.RatString(), gotMu.RatString())
	}

	wantEv, wantErr := en.FactAtAction(f, agent, action)
	gotEv, gotErr := lp.FactAtAction(f, agent, action)
	if sameErr("FactAtAction", wantErr, gotErr) && !wantEv.Equal(gotEv) {
		t.Fatalf("FactAtAction: enum %v, lp %v", wantEv, gotEv)
	}

	for _, p := range []*big.Rat{ratutil.Zero(), ratutil.R(1, 2), ratutil.R(9, 10), ratutil.One()} {
		what := fmt.Sprintf("ThresholdMeasure(p=%s)", p.RatString())
		want, wantErr := en.ThresholdMeasure(f, agent, action, p)
		got, gotErr := lp.ThresholdMeasure(f, agent, action, p)
		if sameErr(what, wantErr, gotErr) && want.Cmp(got) != 0 {
			t.Fatalf("%s: enum %s, lp %s", what, want.RatString(), got.RatString())
		}
		wantEv, wantErr := en.BeliefThresholdEvent(f, agent, action, p)
		gotEv, gotErr := lp.BeliefThresholdEvent(f, agent, action, p)
		if sameErr("BeliefThresholdEvent", wantErr, gotErr) && !wantEv.Equal(gotEv) {
			t.Fatalf("BeliefThresholdEvent(p=%s): enum %v, lp %v", p.RatString(), wantEv, gotEv)
		}
	}
}

func TestEngineMatchesCoreOnSquads(t *testing.T) {
	for _, n := range []int{2, 3} {
		sys, err := scenarios.NFiringSquadSystem(n, ratutil.R(1, 10), false)
		if err != nil {
			t.Fatalf("nsquad(%d): %v", n, err)
		}
		var locals []string
		for _, ag := range sys.Agents() {
			if id, ok := sys.AgentIndex(ag); ok {
				locals = append(locals, sys.LocalStates(id)...)
			}
		}
		facts := []logic.Fact{
			logic.True(),
			logic.False(),
			logic.LocalContains(scenarios.General, "Yes"),
			logic.Not(logic.LocalContains("s1", "o")),
			logic.Once(logic.LocalContains(scenarios.General, "Yes")),
			epistemic.Believes("s1", ratutil.R(1, 2), scenarios.AllFireFact(n)),
			epistemic.Knows(scenarios.General, logic.True()),
		}
		for _, agent := range []string{scenarios.General, "s1"} {
			for _, f := range facts {
				diffEngines(t, sys, f, agent, scenarios.ActFire, locals)
			}
		}
	}
}

// Random systems with node-labelled (past-based, but opaque) facts: the
// engine itself does not require a structural spec — only the query
// layer's CanSolveLP gate does — so randsys.PastFact exercises it.
func TestEngineMatchesCoreOnRandomSystems(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		cfg := randsys.Default(seed)
		cfg.DetAction = seed%2 == 0
		sys, err := randsys.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		id, _ := sys.AgentIndex(sys.Agents()[0])
		locals := append(sys.LocalStates(id), "no-such-local")
		f := randsys.PastFact(sys, seed*17)
		diffEngines(t, sys, f, sys.Agents()[0], randsys.DesignatedAction, locals)
	}
}

func TestEngineErrorParity(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	en := core.New(sys)
	lp := lpengine.New(sys)

	_, wantErr := en.Belief(logic.True(), "zork", "x")
	_, gotErr := lp.Belief(logic.True(), "zork", "x")
	if !errors.Is(gotErr, core.ErrUnknownAgent) || gotErr.Error() != wantErr.Error() {
		t.Fatalf("unknown agent: enum %q, lp %q", wantErr, gotErr)
	}

	_, wantErr = en.Belief(logic.True(), scenarios.General, "no-such-state")
	_, gotErr = lp.Belief(logic.True(), scenarios.General, "no-such-state")
	if !errors.Is(gotErr, core.ErrUnknownLocal) || gotErr.Error() != wantErr.Error() {
		t.Fatalf("unknown local: enum %q, lp %q", wantErr, gotErr)
	}

	_, wantErr = en.ConstraintProb(logic.True(), scenarios.General, "no-such-action")
	_, gotErr = lp.ConstraintProb(logic.True(), scenarios.General, "no-such-action")
	if !errors.Is(gotErr, core.ErrNotProper) || gotErr.Error() != wantErr.Error() {
		t.Fatalf("improper action: enum %q, lp %q", wantErr, gotErr)
	}
}

func TestEngineStatsCount(t *testing.T) {
	sys, err := scenarios.NFiringSquadSystem(2, ratutil.R(1, 10), false)
	if err != nil {
		t.Fatal(err)
	}
	lp := lpengine.New(sys)
	if _, err := lp.ConstraintProb(logic.True(), scenarios.General, scenarios.ActFire); err != nil {
		t.Fatal(err)
	}
	st := lp.Stats()
	if st.Bounds != 1 || st.Solves != 2 || st.Columns < 1 || st.Classes < 1 {
		t.Fatalf("stats = %+v, want 1 bound / 2 solves and some columns", st)
	}
}
