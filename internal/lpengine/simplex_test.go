package lpengine

import (
	"math/big"
	"testing"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }

func row(vals ...*big.Rat) []*big.Rat { return vals }

func requireOptimal(t *testing.T, sol Solution, want *big.Rat) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Objective.Cmp(want) != 0 {
		t.Fatalf("objective = %s, want %s", sol.Objective.RatString(), want.RatString())
	}
}

// max x+y s.t. x + s1 = 2, y + s2 = 3 → 5 at x=2, y=3.
func TestMaximizeSimpleBounds(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{
			row(r(1, 1), r(0, 1), r(1, 1), r(0, 1)),
			row(r(0, 1), r(1, 1), r(0, 1), r(1, 1)),
		},
		B: []*big.Rat{r(2, 1), r(3, 1)},
		C: []*big.Rat{r(1, 1), r(1, 1), r(0, 1), r(0, 1)},
	}
	sol := Maximize(p)
	requireOptimal(t, sol, r(5, 1))
	if sol.X[0].Cmp(r(2, 1)) != 0 || sol.X[1].Cmp(r(3, 1)) != 0 {
		t.Fatalf("x = %v, want (2, 3, _, _)", sol.X)
	}
}

// Exact fractions: max x s.t. 3x + s = 1 → 1/3, no rounding anywhere.
func TestMaximizeExactFractions(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{row(r(3, 1), r(1, 1))},
		B: []*big.Rat{r(1, 1)},
		C: []*big.Rat{r(1, 1), r(0, 1)},
	}
	requireOptimal(t, Maximize(p), r(1, 3))
}

// min x+y s.t. x + y - s = 1 → 1 (Minimize negates through Maximize).
func TestMinimize(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{row(r(1, 1), r(1, 1), r(-1, 1))},
		B: []*big.Rat{r(1, 1)},
		C: []*big.Rat{r(1, 1), r(1, 1), r(0, 1)},
	}
	requireOptimal(t, Minimize(p), r(1, 1))
}

// x + y = 1, x - y = 2, both ≥ 0 has the unique solution (3/2, -1/2),
// which violates y ≥ 0: infeasible.
func TestInfeasible(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{
			row(r(1, 1), r(1, 1)),
			row(r(1, 1), r(-1, 1)),
		},
		B: []*big.Rat{r(1, 1), r(2, 1)},
		C: []*big.Rat{r(1, 1), r(0, 1)},
	}
	if sol := Maximize(p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// max x s.t. x - y = 0: the ray x = y → ∞ is feasible, so unbounded.
func TestUnbounded(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{row(r(1, 1), r(-1, 1))},
		B: []*big.Rat{r(0, 1)},
		C: []*big.Rat{r(1, 1), r(0, 1)},
	}
	if sol := Maximize(p); sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

// A negative right-hand side must be row-normalized, not rejected:
// -x - s = -2 ⇔ x + s = 2 → max x = 2.
func TestNegativeRHS(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{row(r(-1, 1), r(-1, 1))},
		B: []*big.Rat{r(-2, 1)},
		C: []*big.Rat{r(1, 1), r(0, 1)},
	}
	requireOptimal(t, Maximize(p), r(2, 1))
}

// A redundant (dependent) constraint leaves an artificial basic at zero
// after phase 1; the solve must still reach the optimum.
func TestRedundantConstraint(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{
			row(r(1, 1), r(1, 1)),
			row(r(2, 1), r(2, 1)), // 2× the first row
		},
		B: []*big.Rat{r(1, 1), r(2, 1)},
		C: []*big.Rat{r(1, 1), r(0, 1)},
	}
	requireOptimal(t, Maximize(p), r(1, 1))
}

// Beale's classic cycling example (converted to equalities with slack
// columns); Bland's rule must terminate at the optimum 1/20.
func TestBealeNoCycling(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{
			row(r(1, 4), r(-60, 1), r(-1, 25), r(9, 1), r(1, 1), r(0, 1), r(0, 1)),
			row(r(1, 2), r(-90, 1), r(-1, 50), r(3, 1), r(0, 1), r(1, 1), r(0, 1)),
			row(r(0, 1), r(0, 1), r(1, 1), r(0, 1), r(0, 1), r(0, 1), r(1, 1)),
		},
		B: []*big.Rat{r(0, 1), r(0, 1), r(1, 1)},
		C: []*big.Rat{r(3, 4), r(-150, 1), r(1, 50), r(-6, 1), r(0, 1), r(0, 1), r(0, 1)},
	}
	requireOptimal(t, Maximize(p), r(1, 20))
}

// The degenerate master shape condLP builds: column bounds plus a
// conditioning row that pins x = m; max and min must coincide.
func TestDegenerateMasterMaxEqualsMin(t *testing.T) {
	p := Problem{
		A: [][]*big.Rat{
			row(r(1, 1), r(0, 1), r(1, 1), r(0, 1)),
			row(r(0, 1), r(1, 1), r(0, 1), r(1, 1)),
			row(r(1, 1), r(1, 1), r(0, 1), r(0, 1)),
		},
		B: []*big.Rat{r(1, 3), r(2, 3), r(1, 1)},
		C: []*big.Rat{r(1, 1), r(0, 1), r(0, 1), r(0, 1)},
	}
	hi := Maximize(p)
	lo := Minimize(p)
	requireOptimal(t, hi, r(1, 3))
	requireOptimal(t, lo, r(1, 3))
}
