// Package lpengine is the second exact backend: it answers Threshold /
// Constraint / Belief bound queries by linear programming over exact
// rationals instead of enumerating the run space.
//
// The solver below is a dense two-phase primal simplex over big.Rat
// with Bland's anti-cycling rule. No floats appear anywhere on the
// answer path: every tableau cell, objective and solution coordinate is
// a *big.Rat, so an Optimal verdict is an exact-rational certificate,
// bit-for-bit comparable with the enumeration engine's answers.
package lpengine

import (
	"fmt"
	"math/big"
)

// Status classifies the outcome of a simplex solve.
type Status int

const (
	// Optimal means the program has a finite optimum; Solution carries it.
	Optimal Status = iota
	// Infeasible means no x ≥ 0 satisfies Ax = b.
	Infeasible
	// Unbounded means the objective is unbounded above on the feasible set.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem is a linear program in standard equality form:
//
//	maximize   C·x
//	subject to A·x = B,  x ≥ 0
//
// A is len(B) rows by len(C) columns. Inputs are not mutated.
type Problem struct {
	A [][]*big.Rat
	B []*big.Rat
	C []*big.Rat
}

// Solution is the outcome of a solve. Objective and X are set only when
// Status is Optimal. Pivots counts simplex pivots across both phases.
type Solution struct {
	Status    Status
	Objective *big.Rat
	X         []*big.Rat
	Pivots    int
}

// Maximize solves the program with a two-phase Bland's-rule simplex.
func Maximize(p Problem) Solution {
	t := newTableau(p)

	// Phase 1: maximize −Σ artificials from the all-artificial basis.
	// The optimum is 0 exactly when the program is feasible.
	phase1 := make([]*big.Rat, t.cols)
	for j := t.n; j < t.cols; j++ {
		phase1[j] = big.NewRat(-1, 1)
	}
	t.setObjective(phase1)
	if st := t.pivotLoop(t.cols); st != Optimal {
		// −Σ artificials is bounded above by 0, so Unbounded is impossible.
		panic("lpengine: phase-1 simplex unbounded")
	}
	if t.cost[t.cols].Sign() != 0 {
		return Solution{Status: Infeasible, Pivots: t.pivots}
	}
	t.evictArtificials()

	// Phase 2: the real objective, artificial columns barred from entering.
	phase2 := make([]*big.Rat, t.cols)
	for j := 0; j < t.n; j++ {
		phase2[j] = p.C[j]
	}
	t.setObjective(phase2)
	if st := t.pivotLoop(t.n); st != Optimal {
		return Solution{Status: Unbounded, Pivots: t.pivots}
	}

	x := make([]*big.Rat, t.n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i, v := range t.basis {
		if v < t.n {
			x[v].Set(t.a[i][t.cols])
		}
	}
	return Solution{
		Status:    Optimal,
		Objective: new(big.Rat).Set(t.cost[t.cols]),
		X:         x,
		Pivots:    t.pivots,
	}
}

// Minimize solves the same program for the minimum of C·x.
func Minimize(p Problem) Solution {
	neg := Problem{A: p.A, B: p.B, C: make([]*big.Rat, len(p.C))}
	for j, c := range p.C {
		neg.C[j] = new(big.Rat).Neg(c)
	}
	sol := Maximize(neg)
	if sol.Status == Optimal {
		sol.Objective.Neg(sol.Objective)
	}
	return sol
}

// tableau is the working state: m constraint rows over n structural
// columns plus m artificial columns, with the right-hand side stored in
// column index cols (= n+m). cost is the reduced-cost row in the
// "z − c·x = 0" convention: cost[j] ≥ 0 for all candidate j means
// optimal, and cost[cols] then holds the objective value.
type tableau struct {
	m, n, cols int
	a          [][]*big.Rat // m rows × (cols+1) cells
	cost       []*big.Rat   // cols+1 cells
	basis      []int        // basis[i] = variable basic in row i
	pivots     int
}

func newTableau(p Problem) *tableau {
	m, n := len(p.B), len(p.C)
	t := &tableau{m: m, n: n, cols: n + m}
	t.a = make([][]*big.Rat, m)
	t.basis = make([]int, m)
	for i := 0; i < m; i++ {
		row := make([]*big.Rat, t.cols+1)
		for j := 0; j < n; j++ {
			row[j] = new(big.Rat).Set(p.A[i][j])
		}
		for j := n; j < t.cols; j++ {
			row[j] = new(big.Rat)
		}
		row[t.cols] = new(big.Rat).Set(p.B[i])
		if row[t.cols].Sign() < 0 {
			for j := 0; j <= t.cols; j++ {
				row[j].Neg(row[j])
			}
		}
		row[n+i].SetInt64(1)
		t.a[i] = row
		t.basis[i] = n + i
	}
	return t
}

// setObjective installs maximize d·x (nil entries read as 0) as the cost
// row and eliminates the current basic variables from it.
func (t *tableau) setObjective(d []*big.Rat) {
	t.cost = make([]*big.Rat, t.cols+1)
	for j := 0; j <= t.cols; j++ {
		t.cost[j] = new(big.Rat)
		if j < t.cols && d[j] != nil {
			t.cost[j].Neg(d[j])
		}
	}
	tmp := new(big.Rat)
	for i, v := range t.basis {
		if t.cost[v].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(t.cost[v])
		for j := 0; j <= t.cols; j++ {
			t.cost[j].Sub(t.cost[j], tmp.Mul(factor, t.a[i][j]))
		}
	}
}

// pivotLoop runs Bland's-rule pivots until optimal or unbounded.
// Columns with index ≥ limit may not enter the basis (phase 2 passes
// limit = n to bar the artificials).
func (t *tableau) pivotLoop(limit int) Status {
	// Bland's rule cannot cycle; the cap is a defensive backstop that
	// turns an implementation bug into a loud failure instead of a hang.
	maxPivots := 1000 * (t.cols + 1)
	ratio, best := new(big.Rat), new(big.Rat)
	for {
		enter := -1
		for j := 0; j < limit; j++ {
			if t.cost[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		leave := -1
		for i := 0; i < t.m; i++ {
			if t.a[i][enter].Sign() <= 0 {
				continue
			}
			ratio.Quo(t.a[i][t.cols], t.a[i][enter])
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				best.Set(ratio)
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		if t.pivots > maxPivots {
			panic("lpengine: simplex pivot cap exceeded")
		}
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	t.pivots++
	piv := new(big.Rat).Set(t.a[leave][enter])
	row := t.a[leave]
	for j := 0; j <= t.cols; j++ {
		row[j].Quo(row[j], piv)
	}
	tmp := new(big.Rat)
	eliminate := func(target []*big.Rat) {
		if target[enter].Sign() == 0 {
			return
		}
		factor := new(big.Rat).Set(target[enter])
		for j := 0; j <= t.cols; j++ {
			target[j].Sub(target[j], tmp.Mul(factor, row[j]))
		}
	}
	for i := 0; i < t.m; i++ {
		if i != leave {
			eliminate(t.a[i])
		}
	}
	eliminate(t.cost)
	t.basis[leave] = enter
}

// evictArtificials pivots any artificial variable still basic after
// phase 1 (necessarily at value 0) out of the basis where a structural
// column allows it. A row whose structural coefficients are all zero is
// a redundant constraint; its artificial stays basic at zero and is
// harmless because phase 2 bars artificial columns from entering.
func (t *tableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			continue
		}
		for j := 0; j < t.n; j++ {
			if t.a[i][j].Sign() != 0 {
				t.pivot(i, j)
				break
			}
		}
	}
}
