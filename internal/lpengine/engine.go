package lpengine

import (
	"fmt"
	"math/big"
	"sort"
	"sync"

	"pak/internal/core"
	"pak/internal/logic"
	"pak/internal/pps"
	"pak/internal/ratutil"
	"pak/internal/runset"
)

// Engine answers the belief-bound query surface (Belief, Constraint,
// Threshold) over a single pps by linear programming instead of run
// enumeration. It mirrors core.Engine's semantics and error contract
// exactly — the differential harness in internal/query requires
// byte-identical results from both backends — but does the measure
// arithmetic differently:
//
// Runs are aggregated into world-columns keyed by tree node (runs
// through one α-node or one ℓ-node), the queried fact is evaluated once
// per column generator at a representative run instead of once per run
// — sound exactly for past-based facts, whose value at a point is a
// function of the tree node, which is why query.CanSolveLP gates entry
// — and the conditional bound is the optimum of a small LP over the
// polytope of mass assignments consistent with the column masses and
// the conditioning row. Per-column mass bounds plus the conditioning
// equality pin the polytope to a single point, so the maximum and
// minimum coincide; the engine solves both with an exact-rational
// simplex and asserts their equality, making every answer a two-sided
// LP certificate computed without enumerating the run space.
//
// Facts passed to an Engine must be past-based; callers gate with
// query.CanSolveLP. An Engine is safe for concurrent use.
type Engine struct {
	sys *pps.System

	mu    sync.Mutex
	acts  map[actKey]*actInfo
	locs  map[locKey]*locInfo
	stats Stats
}

// Stats counts the structural work an Engine has done; the differential
// experiment (E18) reports these against the enumeration engine's
// states×runs products.
type Stats struct {
	// Bounds counts conditional bounds answered by LP solves.
	Bounds int64
	// Classes counts run-class column generators built (distinct tree
	// nodes); the fact under query is evaluated once per class.
	Classes int64
	// Columns counts aggregated LP columns across all solves.
	Columns int64
	// Solves counts simplex solves (each bound solves max and min).
	Solves int64
	// Pivots counts simplex pivots across all solves.
	Pivots int64
}

// New returns an Engine bound to sys.
func New(sys *pps.System) *Engine {
	return &Engine{
		sys:  sys,
		acts: make(map[actKey]*actInfo),
		locs: make(map[locKey]*locInfo),
	}
}

// System returns the underlying system.
func (e *Engine) System() *pps.System { return e.sys }

// Stats returns a snapshot of the engine's work counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

type actKey struct {
	agent  pps.AgentID
	action string
}

type locKey struct {
	agent pps.AgentID
	local string
}

// runClass is one world-column generator: the set of runs that pass
// through one tree node relevant to the query — the α-node whose edge
// records the action, or the node at which the local state ℓ occurs.
// Every past-based fact takes a single value on the whole class, read
// at (repr, time).
type runClass struct {
	node    pps.NodeID
	time    int      // fact-evaluation time (performance / occurrence time)
	local   string   // acting local state, or ℓ itself for ℓ-classes
	mass    *big.Rat // µ of the class
	repr    pps.RunID
	members []int
}

// actInfo mirrors core's performance index for one (agent, action),
// refined into run classes.
type actInfo struct {
	set      *runset.Set
	times    []int
	multiple bool
	locals   []string
	classes  []*runClass
	total    *big.Rat // Σ class masses = µ(R_α)
}

// locInfo indexes one (agent, local) occurrence event, refined into run
// classes by occurrence node.
type locInfo struct {
	classes []*runClass
	total   *big.Rat // µ(ℓ)
}

// agent resolves an agent name (same contract as core.Engine).
func (e *Engine) agent(name string) (pps.AgentID, error) {
	id, ok := e.sys.AgentIndex(name)
	if !ok {
		return 0, fmt.Errorf("%w: %q", core.ErrUnknownAgent, name)
	}
	return id, nil
}

// actFor computes (and memoizes) the class-refined performance index.
func (e *Engine) actFor(a pps.AgentID, action string) *actInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := actKey{a, action}
	if info, ok := e.acts[key]; ok {
		return info
	}
	info := &actInfo{
		set:   e.sys.NewSet(),
		times: make([]int, e.sys.NumRuns()),
		total: new(big.Rat),
	}
	byNode := make(map[pps.NodeID]*runClass)
	localSeen := make(map[string]bool)
	for r := 0; r < e.sys.NumRuns(); r++ {
		run := pps.RunID(r)
		info.times[r] = -1
		for t := 0; t < e.sys.RunLen(run); t++ {
			act, ok := e.sys.Action(run, t, a)
			if !ok || act != action {
				continue
			}
			if info.times[r] >= 0 {
				info.multiple = true
				continue
			}
			info.times[r] = t
			info.set.Add(r)
			local := e.sys.Local(run, t, a)
			localSeen[local] = true
			// The class key is the α-node: the child node whose incoming
			// edge records the performance. Runs through the same acting
			// point can diverge on whether they perform α (the action sits
			// on the edge), but runs through the same α-node all perform it
			// at the same time, in the same local state, with the same
			// value for every past-based fact at the acting point.
			u := e.sys.NodeAt(run, t+1)
			c := byNode[u]
			if c == nil {
				c = &runClass{node: u, time: t, local: local, repr: run}
				byNode[u] = c
				info.classes = append(info.classes, c)
			}
			c.members = append(c.members, r)
		}
	}
	sort.Slice(info.classes, func(i, j int) bool {
		return info.classes[i].node < info.classes[j].node
	})
	// Class and column masses through the measure kernel: one integer sum
	// and one reduction per class instead of a big.Rat Add per member run.
	for _, c := range info.classes {
		c.mass = e.sys.MeasureRuns(c.members)
	}
	info.total = e.sys.Measure(info.set)
	info.locals = make([]string, 0, len(localSeen))
	for l := range localSeen {
		info.locals = append(info.locals, l)
	}
	sort.Strings(info.locals)
	e.stats.Classes += int64(len(info.classes))
	e.acts[key] = info
	return info
}

// locFor computes (and memoizes) the class-refined occurrence index for
// a local state, with core.Engine's unknown-local error.
func (e *Engine) locFor(a pps.AgentID, agent, local string) (*locInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := locKey{a, local}
	if info, ok := e.locs[key]; ok {
		return info, nil
	}
	occ, tm, ok := e.sys.OccursShared(a, local)
	if !ok {
		return nil, fmt.Errorf("%w: agent %q state %q", core.ErrUnknownLocal, agent, local)
	}
	info := &locInfo{}
	byNode := make(map[pps.NodeID]*runClass)
	occ.ForEach(func(r int) bool {
		run := pps.RunID(r)
		u := e.sys.NodeAt(run, tm)
		c := byNode[u]
		if c == nil {
			c = &runClass{node: u, time: tm, local: local, repr: run}
			byNode[u] = c
			info.classes = append(info.classes, c)
		}
		c.members = append(c.members, r)
		return true
	})
	sort.Slice(info.classes, func(i, j int) bool {
		return info.classes[i].node < info.classes[j].node
	})
	// Masses through the measure kernel (see actFor).
	info.total = e.sys.Measure(occ)
	for _, c := range info.classes {
		c.mass = e.sys.MeasureRuns(c.members)
	}
	e.stats.Classes += int64(len(info.classes))
	e.locs[key] = info
	return info, nil
}

// properFor resolves agent and requires the action to be proper, with
// core.Engine's exact error texts and precedence.
func (e *Engine) properFor(agent, action string) (pps.AgentID, *actInfo, error) {
	a, err := e.agent(agent)
	if err != nil {
		return 0, nil, err
	}
	info := e.actFor(a, action)
	if info.set.IsEmpty() {
		return 0, nil, fmt.Errorf("%w: %s never performs %q", core.ErrNotProper, agent, action)
	}
	if info.multiple {
		return 0, nil, fmt.Errorf("%w: %s performs %q more than once in some run", core.ErrNotProper, agent, action)
	}
	return a, info, nil
}

// column is an aggregated LP column: the total mass of the run classes
// sharing an acting local state and a fact value.
type column struct {
	v    bool
	mass *big.Rat
}

// condLP answers µ(E | ⋃classes) where E is the union of the classes
// the holds predicate selects. Columns are generated lazily in class
// order and aggregated by (local state, value) — the pgel-sat move of
// producing world-columns on demand rather than enumerating worlds up
// front; because the conditioning row demands the full mass, the
// pricing step degenerates to "uncovered mass > 0", and generation
// terminates exactly when the master becomes feasible. The payoff is
// that holds runs once per class (tree node), not once per run.
//
// The master LP over columns c with masses m_c is
//
//	max/min Σ_{c: v(c)} x_c   s.t.  x_c + s_c = m_c,  Σ_c x_c = M
//
// whose feasible set is the single point x = m (the mass bounds plus
// the conditioning equality Σ m_c = M leave no slack), so the two
// optima must agree; condLP solves both and asserts it, returning the
// shared optimum divided by M. The caller guarantees M > 0.
func (e *Engine) condLP(classes []*runClass, total *big.Rat, holds func(*runClass) bool) (*big.Rat, *runset.Set) {
	ev := e.sys.NewSet()
	type colKey struct {
		local string
		v     bool
	}
	cols := make(map[colKey]*column)
	var order []*column
	uncovered := new(big.Rat).Set(total)
	for _, c := range classes {
		v := holds(c)
		if v {
			for _, r := range c.members {
				ev.Add(r)
			}
		}
		k := colKey{c.local, v}
		col := cols[k]
		if col == nil {
			col = &column{v: v, mass: new(big.Rat)}
			cols[k] = col
			order = append(order, col)
		}
		col.mass.Add(col.mass, c.mass)
		uncovered.Sub(uncovered, c.mass)
	}
	if uncovered.Sign() != 0 {
		// The conditioning row could not be covered: the class masses do
		// not sum to the conditioning mass, which is an indexing bug, not
		// a query error.
		panic(fmt.Sprintf("lpengine: column generation left %s of the conditioning mass uncovered",
			uncovered.RatString()))
	}

	// Master LP: one structural variable x_c and one slack s_c per
	// column; rows are the per-column mass bounds plus the conditioning
	// equality.
	k := len(order)
	p := Problem{
		A: make([][]*big.Rat, k+1),
		B: make([]*big.Rat, k+1),
		C: make([]*big.Rat, 2*k),
	}
	condRow := make([]*big.Rat, 2*k)
	for i, col := range order {
		row := make([]*big.Rat, 2*k)
		for j := range row {
			row[j] = new(big.Rat)
		}
		row[i].SetInt64(1)
		row[k+i].SetInt64(1)
		p.A[i] = row
		p.B[i] = new(big.Rat).Set(col.mass)
		condRow[i] = big.NewRat(1, 1)
		p.C[i] = new(big.Rat)
		if col.v {
			p.C[i].SetInt64(1)
		}
		p.C[k+i] = new(big.Rat)
	}
	for i := k; i < 2*k; i++ {
		condRow[i] = new(big.Rat)
	}
	p.A[k] = condRow
	p.B[k] = new(big.Rat).Set(total)

	hi := Maximize(p)
	lo := Minimize(p)
	if hi.Status != Optimal || lo.Status != Optimal {
		panic(fmt.Sprintf("lpengine: master LP not optimal: max %v, min %v", hi.Status, lo.Status))
	}
	if hi.Objective.Cmp(lo.Objective) != 0 {
		panic(fmt.Sprintf("lpengine: LP bounds disagree: max %s, min %s",
			hi.Objective.RatString(), lo.Objective.RatString()))
	}

	e.mu.Lock()
	e.stats.Bounds++
	e.stats.Columns += int64(k)
	e.stats.Solves += 2
	e.stats.Pivots += int64(hi.Pivots + lo.Pivots)
	e.mu.Unlock()

	return new(big.Rat).Quo(hi.Objective, total), ev
}

// Belief returns β_i(φ) at local state ℓ: µ_T(φ@ℓ | ℓ), matching
// core.Engine.Belief bit for bit. φ must be past-based.
func (e *Engine) Belief(f logic.Fact, agent, local string) (*big.Rat, error) {
	a, err := e.agent(agent)
	if err != nil {
		return nil, err
	}
	info, err := e.locFor(a, agent, local)
	if err != nil {
		return nil, err
	}
	if info.total.Sign() == 0 {
		// Unreachable in a valid pps (mirrors core.Engine.Belief).
		return nil, fmt.Errorf("%w: state %q has zero measure", core.ErrUnknownLocal, local)
	}
	bel, _ := e.condLP(info.classes, info.total, func(c *runClass) bool {
		return f.Holds(e.sys, c.repr, c.time)
	})
	return bel, nil
}

// BeliefByActionState returns β_i(φ) for each local state in L_i[α],
// matching core.Engine.BeliefByActionState.
func (e *Engine) BeliefByActionState(f logic.Fact, agent, action string) (map[string]*big.Rat, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*big.Rat, len(info.locals))
	for _, local := range info.locals {
		bel, belErr := e.Belief(f, agent, local)
		if belErr != nil {
			return nil, belErr
		}
		out[local] = bel
	}
	return out, nil
}

// FactAtAction returns the event φ@α, matching core.Engine.FactAtAction;
// the fact is evaluated once per α-node class.
func (e *Engine) FactAtAction(f logic.Fact, agent, action string) (*runset.Set, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	ev := e.sys.NewSet()
	for _, c := range info.classes {
		if f.Holds(e.sys, c.repr, c.time) {
			for _, r := range c.members {
				ev.Add(r)
			}
		}
	}
	return ev, nil
}

// ConstraintProb returns µ_T(φ@α | α) as an LP bound, matching
// core.Engine.ConstraintProb.
func (e *Engine) ConstraintProb(f logic.Fact, agent, action string) (*big.Rat, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	if info.total.Sign() == 0 {
		return nil, fmt.Errorf("%w: %s never performs %q", core.ErrNotProper, agent, action)
	}
	mu, _ := e.condLP(info.classes, info.total, func(c *runClass) bool {
		return f.Holds(e.sys, c.repr, c.time)
	})
	return mu, nil
}

// thresholdBeliefs computes β_i(φ) once per acting local state, in
// core's sorted-locals order so error precedence matches.
func (e *Engine) thresholdBeliefs(f logic.Fact, agent string, info *actInfo) (map[string]*big.Rat, error) {
	byLocal := make(map[string]*big.Rat, len(info.locals))
	for _, local := range info.locals {
		bel, err := e.Belief(f, agent, local)
		if err != nil {
			return nil, err
		}
		byLocal[local] = bel
	}
	return byLocal, nil
}

// BeliefThresholdEvent returns {r ∈ R_α : (β_i(φ)@α)[r] ≥ p}, matching
// core.Engine.BeliefThresholdEvent.
func (e *Engine) BeliefThresholdEvent(f logic.Fact, agent, action string, p *big.Rat) (*runset.Set, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	byLocal, err := e.thresholdBeliefs(f, agent, info)
	if err != nil {
		return nil, err
	}
	ev := e.sys.NewSet()
	for _, c := range info.classes {
		if ratutil.Geq(byLocal[c.local], p) {
			for _, r := range c.members {
				ev.Add(r)
			}
		}
	}
	return ev, nil
}

// ThresholdMeasure returns µ_T(β_i(φ)@α ≥ p | α) as an LP bound,
// matching core.Engine.ThresholdMeasure.
func (e *Engine) ThresholdMeasure(f logic.Fact, agent, action string, p *big.Rat) (*big.Rat, error) {
	_, info, err := e.properFor(agent, action)
	if err != nil {
		return nil, err
	}
	byLocal, err := e.thresholdBeliefs(f, agent, info)
	if err != nil {
		return nil, err
	}
	if info.total.Sign() == 0 {
		return nil, fmt.Errorf("%w: %s never performs %q", core.ErrNotProper, agent, action)
	}
	tm, _ := e.condLP(info.classes, info.total, func(c *runClass) bool {
		return ratutil.Geq(byLocal[c.local], p)
	})
	return tm, nil
}
