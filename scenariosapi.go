package pak

import (
	"math/big"

	"pak/internal/scenarios"
)

// Ready-made scenario protocols beyond the paper's Example 1, re-exported
// from internal/scenarios: the relaxed mutual exclusion and bounded
// randomized consensus workloads the paper's introduction motivates.

// Scenario action names.
const (
	// ActEnter is the mutual-exclusion critical-section entry action.
	ActEnter = scenarios.ActEnter
	// ActRequest is the mutual-exclusion request action.
	ActRequest = scenarios.ActRequest
	// ActDecide0 and ActDecide1 are the consensus decision actions.
	ActDecide0 = scenarios.ActDecide0
	ActDecide1 = scenarios.ActDecide1
)

// MutexModel returns the relaxed mutual-exclusion protocol (two agents,
// an arbiter over a lossy channel, timeout entry on silence).
func MutexModel(loss *big.Rat) (Model, error) { return scenarios.Mutex(loss) }

// MutexSystem unfolds the mutual-exclusion scenario into its pps.
func MutexSystem(loss *big.Rat) (*System, error) { return scenarios.MutexSystem(loss) }

// MutexExclusion returns the exclusion condition for the given agent
// ("i" or "j"): the other agent is not entering the critical section now.
func MutexExclusion(agent string) Fact { return scenarios.MutexExclusionFact(agent) }

// ConsensusModel returns the bounded randomized binary consensus protocol
// (uniform bits, one lossy exchange, AND decision rule).
func ConsensusModel(loss *big.Rat) (Model, error) { return scenarios.Consensus(loss) }

// ConsensusSystem unfolds the consensus scenario into its pps.
func ConsensusSystem(loss *big.Rat) (*System, error) { return scenarios.ConsensusSystem(loss) }

// Agreement returns the fact that both agents are currently deciding the
// same value.
func Agreement() Fact { return scenarios.AgreementFact() }

// NFiringSquadSystem unfolds the n-agent generalization of Example 1's
// firing squad (a general plus n−1 soldiers over the lossy channel).
// improved selects the Section 8-style refinement.
func NFiringSquadSystem(n int, loss *big.Rat, improved bool) (*System, error) {
	return scenarios.NFiringSquadSystem(n, loss, improved)
}

// AllFire returns the fact that every agent of an n-agent squad is
// currently firing.
func AllFire(n int) Fact { return scenarios.AllFireFact(n) }
