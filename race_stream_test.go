//go:build race

package pak_test

// The streaming counterpart of TestServiceRaceStress: concurrent
// /v1/eval/stream clients over an eviction-sized engine cache, a third
// of them cancelling mid-stream, with every frame that does arrive
// checked byte for byte against the buffered /v1/eval expectation for
// the same (system, query) slot. The race detector watches the shared
// LRU, the singleflight build table and the per-request stream pools
// under this storm; the assertions pin that concurrency, eviction and
// client abandonment never reorder, duplicate, tear or hole the frame
// sequence.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pak"
)

// streamExpectations evaluates one spec's batch through the buffered
// endpoint and returns each slot's compact wire form.
func streamExpectations(t *testing.T, url, body string) []string {
	t.Helper()
	resp, err := http.Post(url+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out pak.ServiceEvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("expectation request returned %d systems", len(out.Results))
	}
	docs := make([]string, len(out.Results[0].Results))
	for j, doc := range out.Results[0].Results {
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		docs[j] = string(data)
	}
	return docs
}

// streamOnce drives one /v1/eval/stream request, validating every frame
// it reads; with cancelMid it abandons the stream after the first
// result frame (the server must shrug this off — its stream channel is
// buffered for the whole batch).
func streamOnce(t *testing.T, url, body string, expect []string, cancelMid bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/eval/stream", strings.NewReader(body))
	if err != nil {
		t.Error(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Errorf("stream request: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stream status %d", resp.StatusCode)
		return
	}

	seen := make(map[int]bool)
	terminal := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var f struct {
			Frame  string          `json:"frame"`
			Index  int             `json:"index"`
			Status string          `json:"status"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(scanner.Bytes(), &f); err != nil {
			t.Errorf("undecodable frame: %v (%s)", err, scanner.Text())
			return
		}
		switch f.Frame {
		case "result":
			if terminal {
				t.Error("result frame after the terminal frame")
				return
			}
			if seen[f.Index] {
				t.Errorf("index %d streamed twice", f.Index)
				return
			}
			seen[f.Index] = true
			var doc pak.QueryResultDoc
			if err := json.Unmarshal(f.Result, &doc); err != nil {
				t.Errorf("bad result doc: %v", err)
				return
			}
			data, err := json.Marshal(doc)
			if err != nil {
				t.Error(err)
				return
			}
			if string(data) != expect[f.Index] {
				t.Errorf("slot %d differs from batch mode under churn:\nstream: %s\nbatch:  %s",
					f.Index, data, expect[f.Index])
				return
			}
			if cancelMid {
				cancel()
				return
			}
		case "status":
			terminal = true
			if f.Status != "complete" {
				t.Errorf("terminal status %q under a live client", f.Status)
				return
			}
		}
	}
	// A cancelled read legitimately errors; a completed one must not,
	// and must have covered every slot with no holes.
	if err := scanner.Err(); err != nil {
		if !cancelMid {
			t.Errorf("stream read: %v", err)
		}
		return
	}
	if !terminal {
		t.Error("stream ended without a terminal frame")
		return
	}
	if len(seen) != len(expect) {
		t.Errorf("stream covered %d of %d slots", len(seen), len(expect))
		return
	}
	for j := range expect {
		if !seen[j] {
			t.Errorf("index %d never streamed", j)
		}
	}
}

func TestStreamRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stream race stress in -short")
	}
	ts := httptest.NewServer(pak.ServiceHandler(
		pak.WithServiceEngineCache(2), // three distinct specs below → guaranteed eviction churn
	))
	t.Cleanup(ts.Close)

	type target struct {
		spec string
		n    int
	}
	targets := []target{
		{"nsquad(2)", 2},
		{"nsquad(n=2,loss=1/5)", 2},
		{"nsquad(3)", 3},
	}
	bodies := make([]string, len(targets))
	expect := make([][]string, len(targets))
	for i, tg := range targets {
		bodies[i] = raceEvalBody(t, tg.n, tg.spec)
		expect[i] = streamExpectations(t, ts.URL, bodies[i])
	}

	const workers = 9
	const iters = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % len(targets)
				cancelMid := (w+i)%3 == 0 // a third of the clients walk away mid-stream
				streamOnce(t, ts.URL, bodies[k], expect[k], cancelMid)
			}
		}(w)
	}
	wg.Wait()

	// After the storm (evictions, rebuilds, abandoned streams), a final
	// quiet pass must still stream every spec byte-identically.
	for i := range targets {
		streamOnce(t, ts.URL, bodies[i], expect[i], false)
	}
}
