// Mutex: relaxed mutual exclusion, the motivating scenario of the paper's
// introduction. Two agents contend for a critical section through an
// arbiter whose grant/deny messages are lost with probability 1/10; a
// requester that hears nothing times out and enters anyway. Exclusion
// therefore holds only with high probability — a probabilistic constraint
// µ("the CS is otherwise empty" @ enter | enter) — and the paper's
// results say exactly what the agent must believe when entering.
//
// With these parameters the constraint value is exactly 29/31 ≈ 0.9355,
// Theorem 6.2 forces the expected entering belief to equal it, and the
// Section 8 refrain analysis shows that never entering on a timeout would
// raise exclusion to 29/30.
//
// Run with:
//
//	go run ./examples/mutex
package main

import (
	"fmt"
	"log"
	"sort"

	"pak"
)

func main() {
	sys, err := pak.MutexSystem(pak.Rat(1, 10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Relaxed mutual exclusion:", sys)
	fmt.Println()

	engine := pak.NewEngine(sys)
	excl := pak.MutexExclusion("i") // j is not entering now

	mu, err := engine.ConstraintProb(excl, "i", pak.ActEnter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ(CS otherwise empty @ enter_i | enter_i) = %s ≈ %s\n",
		mu.RatString(), mu.FloatString(5))

	beliefs, err := engine.BeliefByActionState(excl, "i", pak.ActEnter)
	if err != nil {
		log.Fatal(err)
	}
	states := make([]string, 0, len(beliefs))
	for s := range beliefs {
		states = append(states, s)
	}
	sort.Strings(states)
	fmt.Println("\nAgent i's belief in exclusion when entering:")
	for _, s := range states {
		fmt.Printf("  %-24s β = %-8s ≈ %s\n", s, beliefs[s].RatString(), beliefs[s].FloatString(4))
	}

	rep, err := engine.CheckExpectation(excl, "i", pak.ActEnter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 6.2: E[β @ enter | enter] = %s = µ: %v\n",
		rep.ExpectedBelief.RatString(), rep.Equal())

	pakRep, err := engine.CheckPAKSquare(excl, "i", pak.ActEnter, pak.Rat(1, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Corollary 7.2 (ε=1/4): premise µ ≥ %s: %v; µ(β ≥ %s | enter) = %s ≥ %s: %v\n",
		pakRep.Threshold.RatString(), pakRep.PremiseMet(),
		pakRep.BeliefLevel.RatString(), pakRep.BeliefMeasure.RatString(),
		pakRep.Bound.RatString(), pakRep.ConclusionMet())

	// The Section 8 design insight, computed from this system alone: what
	// would exclusion become if i never entered on a silent timeout?
	refrain, err := engine.RefrainAnalysis(excl, "i", pak.ActEnter, pak.Rat(9, 10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRefrain analysis (threshold 9/10): µ %s → %s by pruning %v\n",
		refrain.Original.RatString(), refrain.Predicted.RatString(), refrain.Pruned)
	fmt.Printf("surviving entry measure: %s of the original\n", refrain.ActingMeasure.RatString())
}
