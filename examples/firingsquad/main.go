// Firing squad: the paper's Example 1 end to end — unfold the FS protocol
// over the lossy channel, reproduce every number the paper states, apply
// the Section 8 improvement, and cross-validate by simulation.
//
// Run with:
//
//	go run ./examples/firingsquad
package main

import (
	"fmt"
	"log"
	"sort"

	"pak"
)

func main() {
	loss := pak.Rat(1, 10) // the paper's per-message loss probability

	fmt.Println("=== Example 1: the FS protocol ===")
	analyze(loss, pak.FSOriginal)

	fmt.Println("\n=== Section 8: the improved protocol (never fire on 'No') ===")
	analyze(loss, pak.FSImproved)

	fmt.Println("\n=== Monte-Carlo cross-check (protocol-level simulation) ===")
	simulate(loss)
}

func analyze(loss interface{ RatString() string }, variant pak.FSVariant) {
	lossRat := pak.MustRat(loss.RatString())
	sys, err := pak.FiringSquad(lossRat, variant)
	if err != nil {
		log.Fatal(err)
	}
	engine := pak.NewEngine(sys)
	bothFire := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	bobFires := pak.Does("Bob", "fire")

	mu, err := engine.ConstraintProb(bothFire, "Alice", "fire")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ(both fire | Alice fires) = %s ≈ %s\n", mu.RatString(), mu.FloatString(5))

	// Alice's information states when she fires, with her belief that Bob
	// is firing too (the paper's three states: Yes → 1, No → 0,
	// silence → 0.99).
	beliefs, err := engine.BeliefByActionState(bobFires, "Alice", "fire")
	if err != nil {
		log.Fatal(err)
	}
	states := make([]string, 0, len(beliefs))
	for s := range beliefs {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Printf("  β_A(Bob fires) at %-28s = %s\n", s, beliefs[s].RatString())
	}

	// How often does Alice's belief meet the 0.95 threshold when firing?
	tm, err := engine.ThresholdMeasure(bothFire, "Alice", "fire", pak.Rat(95, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ(β ≥ 0.95 | Alice fires)  = %s ≈ %s\n", tm.RatString(), tm.FloatString(4))

	// Theorem 6.2: expected belief equals the constraint value exactly.
	rep, err := engine.CheckExpectation(bothFire, "Alice", "fire")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 6.2: E[β] = %s = µ: %v\n", rep.ExpectedBelief.RatString(), rep.Equal())
}

func simulate(loss interface{ RatString() string }) {
	lossRat := pak.MustRat(loss.RatString())
	model, err := pak.FiringSquadModel(lossRat, pak.FSOriginal)
	if err != nil {
		log.Fatal(err)
	}
	sampler := pak.NewProtocolSampler(model, 2024)
	const n = 200_000
	est, err := sampler.EstimateTraceConditional(
		func(tr pak.Trace) bool {
			return tr.Acts[2][0] == "fire" && tr.Acts[2][1] == "fire"
		},
		func(tr pak.Trace) bool { return tr.Acts[2][0] == "fire" },
		n,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled µ(both fire | Alice fires) over %d runs: %v\n", n, est)
	fmt.Printf("exact value 0.99 within the 99%% confidence interval: %v\n", est.Contains(0.99))
}
