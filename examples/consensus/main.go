// Consensus: a bounded randomized binary consensus over a lossy channel,
// analyzed with the paper's machinery. Two agents draw uniform initial
// bits, exchange them over a channel that loses each message with
// probability 1/10, and decide with the AND rule (decide the minimum of
// the known bits; a silent peer is ignored). Agreement is therefore
// probabilistic, and the PAK results characterize what an agent must
// believe about agreement when it decides.
//
// With these parameters, µ(agreement @ decide0 | decide0) = 28/29 and
// µ(agreement @ decide1 | decide1) = 10/11 exactly: deciding 1 is the
// risky decision, taken either with certainty of agreement (peer's 1
// received) or with belief 1/2 (silence).
//
// Run with:
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"sort"

	"pak"
)

func main() {
	sys, err := pak.ConsensusSystem(pak.Rat(1, 10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Randomized bounded consensus:", sys)
	fmt.Println()

	engine := pak.NewEngine(sys)
	agree := pak.Agreement()

	for _, decision := range []string{pak.ActDecide0, pak.ActDecide1} {
		mu, err := engine.ConstraintProb(agree, "i", decision)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("µ(agreement @ %s_i | %s_i) = %-7s ≈ %s\n",
			decision, decision, mu.RatString(), mu.FloatString(4))

		beliefs, err := engine.BeliefByActionState(agree, "i", decision)
		if err != nil {
			log.Fatal(err)
		}
		states := make([]string, 0, len(beliefs))
		for s := range beliefs {
			states = append(states, s)
		}
		sort.Strings(states)
		for _, s := range states {
			fmt.Printf("    β(agreement) at %-22s = %s\n", s, beliefs[s].RatString())
		}

		rep, err := engine.CheckExpectation(agree, "i", decision)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    Theorem 6.2 equality: %v\n\n", rep.Equal())
	}

	// Group epistemics: is agreement common 1/2-belief at decision time?
	slice, err := pak.NewSlice(sys, 1)
	if err != nil {
		log.Fatal(err)
	}
	agreeRuns := pak.RunsSatisfying(sys, pak.Sometime(agree))
	common, err := slice.CommonP([]pak.AgentID{0, 1}, agreeRuns, pak.Rat(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Common 1/2-belief of agreement at decision time: %d of %d runs (measure %s)\n",
		common.Count(), sys.NumRuns(), sys.Measure(common).RatString())

	// Validation detail: deciding is a deterministic function of the local
	// state, so Lemma 4.3(a) guarantees the independence hypothesis.
	det, err := engine.IsDeterministicAction("i", pak.ActDecide1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decide1 deterministic (Lemma 4.3(a) applies): %v\n", det)
}
