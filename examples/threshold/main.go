// Threshold: the paper's Theorem 5.2 construction T-hat(p, ε), swept over
// its parameters. It demonstrates the paper's negative result — a
// probabilistic constraint with threshold p can be satisfied even though
// the agent's belief meets p with arbitrarily small probability ε when it
// acts — and the positive PAK counterpart (Corollary 7.2) that survives.
//
// Run with:
//
//	go run ./examples/threshold
package main

import (
	"fmt"
	"log"

	"pak"
)

func main() {
	fmt.Println("T-hat(p, ε): µ(φ@α|α) = p while µ(β ≥ p | α) = ε")
	fmt.Println()
	fmt.Printf("%-10s %-10s %-22s %-16s %-12s\n",
		"p", "ε", "non-revealing belief", "µ(β ≥ p | α)", "µ(φ@α|α)")

	sweep := []struct{ p, eps string }{
		{"1/2", "1/4"},
		{"9/10", "1/10"},
		{"9/10", "1/100"},
		{"9/10", "1/1000"},
		{"99/100", "1/100"},
		{"999/1000", "1/10000"},
	}
	for _, tc := range sweep {
		p := pak.MustRat(tc.p)
		eps := pak.MustRat(tc.eps)
		sys, err := pak.That(p, eps)
		if err != nil {
			log.Fatal(err)
		}
		phi := pak.LocalContains("j", "bit=1")

		// The three quantities of the sweep row, as one batch.
		results, err := pak.EvalSystem(sys, []pak.Query{
			pak.ConstraintQuery{Fact: phi, Agent: "i", Action: "alpha"},
			pak.ThresholdQuery{Fact: phi, Agent: "i", Action: "alpha", P: p},
			pak.BeliefQuery{Fact: phi, Agent: "i", Local: "i1:recv=m"},
		})
		if err != nil {
			log.Fatal(err)
		}
		mu, tm, bel := results[0].Value, results[1].Value, results[2].Value
		fmt.Printf("%-10s %-10s %-22s %-16s %-12s\n",
			tc.p, tc.eps, bel.RatString(), tm.RatString(), mu.RatString())
	}

	fmt.Println()
	fmt.Println("Theorem 5.2: as ε → 0 the threshold is met on a vanishing measure")
	fmt.Println("of acting runs, yet the constraint µ ≥ p keeps holding.")
	fmt.Println()

	// The PAK view (Corollary 7.2): relax the belief level from p to 1−ε'
	// with ε' = sqrt(1−p); then the relaxed level is met w.p. ≥ 1−ε'.
	fmt.Println("Corollary 7.2 on T-hat(99/100, 1/100) with ε' = 1/10:")
	sys, err := pak.That(pak.Rat(99, 100), pak.Rat(1, 100))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := pak.Eval(pak.NewEngine(sys), pak.TheoremQuery{
		Theorem: pak.TheoremPAK,
		Fact:    pak.LocalContains("j", "bit=1"),
		Agent:   "i", Action: "alpha",
		Eps: pak.Rat(1, 10), // Corollary 7.2 form: δ = ε
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  µ = %s ≥ 1−ε'² = %s (premise): %v\n",
		rep.Value.RatString(), rep.Values["threshold"].RatString(), rep.Flags["premiseMet"])
	fmt.Printf("  µ(β ≥ %s | α) = %s ≥ %s (conclusion): %v\n",
		rep.Values["beliefLevel"].RatString(), rep.Values["beliefMeasure"].RatString(),
		rep.Values["bound"].RatString(), rep.Flags["conclusionMet"])
	fmt.Printf("  PAK holds: %v\n", rep.Passed())
}
