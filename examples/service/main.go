// Service: the pakd HTTP service end to end, in one process. The
// example mounts pak.ServiceHandler (exactly what `pakd` serves) on an
// ephemeral port, discovers the scenario catalog over the wire, then
// POSTs one query-batch document — the format of pak.MarshalQueryBatch /
// pakrand -batch — against two named systems in a single /v1/eval
// request. The service shards the work across both engines through the
// query layer's MultiBatch and returns per-system results in request
// order, every rational exact.
//
// Run with:
//
//	go run ./examples/service
//
// Against a real daemon the same two calls are (see README.md alongside
// this file for the full walkthrough):
//
//	go run ./cmd/pakd &
//	curl -s localhost:8371/v1/scenarios
//	curl -s localhost:8371/v1/eval -d @request.json
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"pak"
)

func main() {
	// One line of Go gives you pakd's handler; a real deployment would
	// pass it to http.ListenAndServe.
	ts := httptest.NewServer(pak.ServiceHandler())
	defer ts.Close()

	// 1. Discover the catalog: every scenario, self-describing.
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		log.Fatal(err)
	}
	var catalog []struct {
		Name   string `json:"name"`
		Doc    string `json:"doc"`
		Params []struct {
			Name    string `json:"name"`
			Default string `json:"default"`
		} `json:"params"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&catalog); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("GET /v1/scenarios → %d scenarios:\n", len(catalog))
	for _, sc := range catalog {
		params := make([]string, 0, len(sc.Params))
		for _, p := range sc.Params {
			params = append(params, p.Name+"="+p.Default)
		}
		fmt.Printf("  %-10s (%s)\n", sc.Name, strings.Join(params, ", "))
	}

	// 2. Build the query batch — the same document pakcheck -batch reads
	// and pakrand -batch writes.
	allFire := pak.AllFire(2)
	batch, err := pak.MarshalQueryBatch([]pak.Query{
		pak.ConstraintQuery{Fact: allFire, Agent: "General", Action: "fire", Threshold: pak.Rat(95, 100)},
		pak.ExpectationQuery{Fact: allFire, Agent: "General", Action: "fire"},
		pak.TheoremQuery{Theorem: pak.TheoremPAK, Fact: allFire, Agent: "General", Action: "fire",
			Eps: pak.Rat(1, 10)},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One request, two named systems: the original n=2 squad (which
	// is Example 1) and its Section 8 refinement. The service fans the
	// batch out across both engines.
	body := fmt.Sprintf(`{"systems": ["nsquad(2)", "nsquad(2,improved=true)"], "queries": %s}`, batch)
	fmt.Printf("\nPOST /v1/eval with %d queries against 2 systems...\n\n", 3)
	evalResp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer evalResp.Body.Close()
	if evalResp.StatusCode != http.StatusOK {
		// Request-level failures (unknown scenario, malformed params, a
		// bad batch document) are 4xx with a JSON {"error": ...} body.
		var ed struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(evalResp.Body).Decode(&ed); err != nil {
			log.Fatalf("eval failed with HTTP %d", evalResp.StatusCode)
		}
		log.Fatalf("eval failed with HTTP %d: %s", evalResp.StatusCode, ed.Error)
	}
	var out struct {
		Results []struct {
			System    string `json:"system"`
			Canonical string `json:"canonical"`
			Results   []struct {
				Kind    string `json:"kind"`
				Value   string `json:"value"`
				Verdict string `json:"verdict"`
				Detail  string `json:"detail"`
				Error   string `json:"error"`
			} `json:"results"`
		} `json:"results"`
	}
	if err := json.NewDecoder(evalResp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}

	// 4. Read the exact results: 99/100 for Example 1, 990/991 for the
	// improvement, with the PAK verdicts alongside.
	for _, sr := range out.Results {
		fmt.Printf("%s  (canonical %s)\n", sr.System, sr.Canonical)
		for _, r := range sr.Results {
			if r.Error != "" {
				fmt.Printf("  %-12s ERROR %s\n", r.Kind, r.Error)
				continue
			}
			line := fmt.Sprintf("  %-12s %s", r.Kind, r.Value)
			if r.Verdict != "" {
				line += "  [" + r.Verdict + "]"
			}
			fmt.Println(line)
		}
	}
}
