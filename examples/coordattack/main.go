// Coordinated attack: the epistemic backdrop of the paper's Example 1.
// Two generals (Alice and Bob) coordinate an attack over a channel losing
// each message with probability 1/10. The classic impossibility says the
// attack can never be common knowledge; Fischer and Zuck's observation —
// which the paper generalizes into Theorem 6.2 — says the *average belief*
// in joint attack, when attacking, equals the protocol's success
// probability. This example computes all of it:
//
//   - common knowledge of "both attack" is unattainable at the decision
//     time over the lossy channel, and reappears when loss = 0;
//   - knowledge depth: how many levels of "everyone knows" survive;
//   - common p-belief IS attainable (the Monderer–Samet relaxation);
//   - the Fischer–Zuck / Theorem 6.2 identity E[β@attack | attack] = µ.
//
// Run with:
//
//	go run ./examples/coordattack
package main

import (
	"fmt"
	"log"

	"pak"
)

func main() {
	analyzeChannel(pak.Rat(1, 10), "lossy channel (loss = 1/10)")
	fmt.Println()
	analyzeChannel(pak.Zero(), "perfect channel (loss = 0)")
}

func analyzeChannel(loss interface{ RatString() string }, label string) {
	fmt.Printf("=== %s ===\n", label)
	sys, err := pak.FiringSquad(pak.MustRat(loss.RatString()), pak.FSOriginal)
	if err != nil {
		log.Fatal(err)
	}
	engine := pak.NewEngine(sys)
	bothNow := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	bothEver := pak.RunsSatisfying(sys, pak.Sometime(bothNow))

	// Epistemic state at the decision time t = 2.
	slice, err := pak.NewSlice(sys, 2)
	if err != nil {
		log.Fatal(err)
	}
	group := []pak.AgentID{0, 1}

	ck, err := slice.CommonKnowledge(group, bothEver)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("common knowledge of joint attack: %d runs (measure %s)\n",
		ck.Count(), sys.Measure(ck).RatString())

	depth, level, err := slice.KnowledgeDepth(group, bothEver, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("levels of 'everyone knows' attained: %d (on %d runs)\n", depth, level.Count())

	for _, p := range []string{"1/2", "9/10", "99/100"} {
		cb, err := slice.CommonP(group, bothEver, pak.MustRat(p))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("common %s-belief of joint attack: %d runs (measure %s)\n",
			p, cb.Count(), sys.Measure(cb).RatString())
	}

	// Fischer–Zuck / Theorem 6.2: Alice's average belief when attacking
	// equals the success probability.
	rep, err := engine.CheckExpectation(bothNow, "Alice", "fire")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ(both attack | Alice attacks)   = %s\n", rep.ConstraintProb.RatString())
	fmt.Printf("E[β_A(both) @ attack | attack]   = %s (equal: %v)\n",
		rep.ExpectedBelief.RatString(), rep.Equal())

	// The Jeffrey decomposition shows *where* the belief mass sits.
	d, err := engine.Decompose(bothNow, "Alice", "fire")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decomposition by Alice's information state:")
	for _, cell := range d.Cells {
		fmt.Printf("  %s\n", cell)
	}
}
