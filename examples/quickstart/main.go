// Quickstart: build a small purely probabilistic system with the public
// API, compute subjective beliefs, and machine-check the paper's main
// theorem on it.
//
// The scenario is a probabilistic diagnosis: a patient is sick with prior
// probability 1/4, a test is 90% accurate, and the doctor treats exactly
// when the test is positive. The paper's machinery answers: what must the
// doctor believe about the patient when treating, and how does that relate
// to the probabilistic constraint "the patient is sick when treated"?
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pak"
)

func main() {
	sys, err := buildDiagnosis()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("System:", sys)
	fmt.Println()

	engine := pak.NewEngine(sys)
	isSick := pak.LocalContains("patient", "sick")

	// The probabilistic constraint value µ(sick@treat | treat): by Bayes
	// this is (1/4·9/10) / (1/4·9/10 + 3/4·1/10) = 3/4.
	mu, err := engine.ConstraintProb(isSick, "doctor", "treat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ(sick @ treat | treat)      = %s (exactly %s)\n", mu.FloatString(4), mu.RatString())

	// The doctor's belief in each information state where she treats.
	beliefs, err := engine.BeliefByActionState(isSick, "doctor", "treat")
	if err != nil {
		log.Fatal(err)
	}
	for state, bel := range beliefs {
		fmt.Printf("β(sick) when treating at %-10q = %s\n", state, bel.RatString())
	}

	// Theorem 6.2 (the probabilistic Knowledge of Preconditions
	// principle): the expected belief when treating equals µ exactly.
	rep, err := engine.CheckExpectation(isSick, "doctor", "treat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 6.2: E[β @ treat | treat] = %s, µ = %s, equal = %v\n",
		rep.ExpectedBelief.RatString(), rep.ConstraintProb.RatString(), rep.Equal())

	// Corollary 7.2 (PAK): with ε = 1/2, µ ≥ 1−ε² = 3/4 forces the doctor
	// to believe "sick" with degree ≥ 1/2 on a measure ≥ 1/2 of the
	// treating runs.
	pakRep, err := engine.CheckPAKSquare(isSick, "doctor", "treat", pak.Rat(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Corollary 7.2 (ε=1/2): µ(β ≥ %s | treat) = %s ≥ %s: %v\n",
		pakRep.BeliefLevel.RatString(), pakRep.BeliefMeasure.RatString(),
		pakRep.Bound.RatString(), pakRep.Holds())
}

// buildDiagnosis constructs the four-scenario diagnosis tree.
func buildDiagnosis() (*pak.System, error) {
	b := pak.NewBuilder("doctor", "patient")
	sick := b.Init(pak.Rat(1, 4), "world", "d0", "sick")
	well := b.Init(pak.Rat(3, 4), "world", "d0", "well")

	// Test outcomes: 90% accurate in both directions.
	type outcome struct {
		parent  pak.NodeID
		pr      [2]int64
		reading string
		patient string
	}
	outcomes := []outcome{
		{sick, [2]int64{9, 10}, "pos", "sick+"},
		{sick, [2]int64{1, 10}, "neg", "sick-"},
		{well, [2]int64{1, 10}, "pos", "well+"},
		{well, [2]int64{9, 10}, "neg", "well-"},
	}
	for _, o := range outcomes {
		mid := b.Child(o.parent, pak.Step{
			Pr:     pak.Rat(o.pr[0], o.pr[1]),
			Acts:   []string{"test", "none"},
			Env:    "world",
			Locals: []string{"d1:" + o.reading, o.patient},
		})
		act := "wait"
		if o.reading == "pos" {
			act = "treat"
		}
		b.Child(mid, pak.Step{
			Pr:     pak.One(),
			Acts:   []string{act, "none"},
			Env:    "world",
			Locals: []string{"d2:" + o.patient, "p2:" + o.patient},
		})
	}
	return b.Build()
}
