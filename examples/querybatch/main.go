// Querybatch: the unified query API on the n-agent firing squad. The
// whole analysis — constraint, expectation, per-state beliefs, threshold
// measure, independence and all five theorem checkers, for every agent —
// is declared as one list of query values, serialized to JSON (the same
// document format the pakcheck -batch flag consumes), and evaluated in
// one parallel EvalBatch call over a shared concurrency-safe engine.
//
// Run with:
//
//	go run ./examples/querybatch
package main

import (
	"fmt"
	"log"

	"pak"
)

func main() {
	const n = 3
	loss := pak.Rat(1, 10)
	sys, err := pak.NFiringSquadSystem(n, loss, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n-agent firing squad: n=%d, loss=%s, %d runs\n\n", n, loss.RatString(), sys.NumRuns())

	// Declare the analysis: every agent × every question, as values.
	allFire := pak.AllFire(n)
	agents := []string{"General", "s1", "s2"}
	var queries []pak.Query
	for _, agent := range agents {
		queries = append(queries,
			pak.ConstraintQuery{Fact: allFire, Agent: agent, Action: "fire", Threshold: pak.Rat(95, 100)},
			pak.ExpectationQuery{Fact: allFire, Agent: agent, Action: "fire"},
			pak.ThresholdQuery{Fact: allFire, Agent: agent, Action: "fire", P: pak.Rat(9, 10)},
			pak.TheoremQuery{Theorem: pak.TheoremExpectation, Fact: allFire, Agent: agent, Action: "fire"},
			pak.TheoremQuery{Theorem: pak.TheoremPAK, Fact: allFire, Agent: agent, Action: "fire", Eps: pak.Rat(1, 10)},
		)
	}

	// Queries are data: ship them as JSON (pakcheck -batch reads this).
	doc, err := pak.MarshalQueryBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the %d-query batch serializes to %d bytes of JSON\n\n", len(queries), len(doc))

	// Evaluate everything in one parallel call over one shared engine.
	results, err := pak.EvalBatch(pak.NewEngine(sys), queries, pak.WithParallelism(8))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-9s %-12s %-22s %-8s\n", "agent", "kind", "value", "verdict")
	for i, res := range results {
		agent := agents[i/5]
		value := "-"
		if res.Value != nil {
			value = res.Value.RatString()
		}
		verdict := string(res.Verdict)
		if verdict == "" {
			verdict = "-"
		}
		fmt.Printf("%-9s %-12s %-22s %-8s\n", agent, res.Kind, value, verdict)
	}

	fmt.Println()
	fmt.Println("Theorem 6.2 at work: for every agent the constraint value equals")
	fmt.Println("the expected belief exactly — compare the constraint and")
	fmt.Println("expectation rows above. All theorem verdicts must pass; a fail")
	fmt.Println("would be a counterexample to the paper.")
}
