// Epistemic: nested beliefs as first-class facts. Because Believes(i,p,φ)
// is itself a fact over the system, higher-order epistemic questions —
// "what does Bob believe about Alice's beliefs?" — are ordinary events
// with exact probabilities, and can themselves be conditions of
// probabilistic constraints analyzed by the paper's theorems.
//
// The example walks the firing squad (Example 1) and T-hat (Figure 2)
// through first- and second-order belief queries, mutual belief levels,
// and a constraint whose condition is itself an epistemic fact.
//
// Run with:
//
//	go run ./examples/epistemic
package main

import (
	"fmt"
	"log"

	"pak"
)

func main() {
	firingSquadHigherOrder()
	fmt.Println()
	thatSecondOrder()
}

func firingSquadHigherOrder() {
	fmt.Println("=== Firing squad: higher-order beliefs at the decision time ===")
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		log.Fatal(err)
	}
	engine := pak.NewEngine(sys)
	goOn := pak.LocalContains("Alice", "go=1") // the mission flag

	// First order: Bob's belief in go=1 after each round-1 observation.
	// (1 after the wake-up, 1/101 after silence — Bayes.)
	for r := 0; r < sys.NumRuns(); r++ {
		if sys.Local(pak.RunID(r), 1, 1) == "t1|none" {
			deg := pak.BeliefDegree(sys, "Bob", goOn, pak.RunID(r), 1)
			fmt.Printf("β_Bob(go=1 | silence at t1) = %s (Bayes: 0.005/0.505)\n", deg.RatString())
			break
		}
	}

	// Second order: when Alice has received 'Yes', what does she believe
	// about Bob's near-certainty in the mission?
	bobSure := pak.Believes("Bob", pak.Rat(99, 100), goOn)
	for r := 0; r < sys.NumRuns(); r++ {
		if sys.RunLen(pak.RunID(r)) > 2 && sys.Local(pak.RunID(r), 2, 0) == "t2|go=1,sent,recv=Yes" {
			deg := pak.BeliefDegree(sys, "Alice", bobSure, pak.RunID(r), 2)
			fmt.Printf("β_Alice(B_Bob^{0.99}(go=1) | received 'Yes') = %s\n", deg.RatString())
			break
		}
	}

	// A constraint whose condition is epistemic: when Alice fires, how
	// often is Bob nearly sure the mission is on? Theorem 6.2 applies
	// because epistemic facts are past-based.
	rep, err := engine.CheckExpectation(bobSure, "Alice", "fire")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ(B_Bob^{0.99}(go=1) @ fire_A | fire_A) = %s; E[β] = %s; Thm 6.2: %v\n",
		rep.ConstraintProb.RatString(), rep.ExpectedBelief.RatString(), rep.Equal())

	// Mutual belief levels of joint firing.
	both := pak.Sometime(pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire")))
	group := []string{"Alice", "Bob"}
	for k := 1; k <= 3; k++ {
		level := pak.MutualBelief(group, pak.Rat(1, 2), both, k)
		ev := sys.RunsWhere(func(r pak.RunID) bool { return level.Holds(sys, r, 2) })
		fmt.Printf("mutual 1/2-belief of joint firing, level %d: measure %s\n",
			k, sys.Measure(ev).RatString())
	}
}

func thatSecondOrder() {
	fmt.Println("=== T-hat(9/10, 1/10): what j believes about i's beliefs ===")
	sys, err := pak.That(pak.Rat(9, 10), pak.Rat(1, 10))
	if err != nil {
		log.Fatal(err)
	}
	bit := pak.LocalContains("j", "bit=1")

	// i's first-order belief thresholds.
	iStrong := pak.Believes("i", pak.Rat(9, 10), bit) // only after m'
	iWeak := pak.Believes("i", pak.Rat(8, 9), bit)    // everywhere at t1

	// j holds bit=1 (run 1): its beliefs about i's state of mind.
	strongDeg := pak.BeliefDegree(sys, "j", iStrong, 1, 1)
	weakDeg := pak.BeliefDegree(sys, "j", iWeak, 1, 1)
	fmt.Printf("β_j(B_i^{9/10}(bit=1)) = %s  (i is convinced only on the ε/p branch)\n",
		strongDeg.RatString())
	fmt.Printf("β_j(B_i^{8/9}(bit=1))  = %s  (the relaxed level holds everywhere)\n",
		weakDeg.RatString())

	// Knowledge nests too: does i know that j knows the bit?
	jKnows := pak.Knows("j", bit)
	iAboutJ := pak.BeliefDegree(sys, "i", jKnows, 1, 1)
	fmt.Printf("β_i(K_j(bit=1)) after receiving m = %s (= i's own belief in bit=1)\n",
		iAboutJ.RatString())
}
