//go:build !race

package pak_test

// raceEnabled reports whether the race detector is instrumenting this
// test binary (see race_on_test.go for the counterpart).
const raceEnabled = false
