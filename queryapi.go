package pak

import (
	"context"

	"pak/internal/core"
	"pak/internal/encode"
	"pak/internal/query"
)

// The unified query API, re-exported from internal/query: every analysis
// the engine offers as a composable request value, one evaluation entry
// point, and a parallel batch evaluator over the concurrency-safe
// Engine. Queries built from structural facts (everything except Atom
// and the *Pred escape hatches) serialize to JSON, so analysis requests
// can be stored, shipped to the CLI tools and replayed.
type (
	// Query is an analysis request evaluable against an Engine.
	Query = query.Query
	// QueryKind identifies a query's analysis family.
	QueryKind = query.Kind
	// QueryResult is the uniform outcome of evaluating any Query: exact
	// rational values, pass/fail verdicts, boolean diagnostics, witness
	// run-sets and belief timelines.
	QueryResult = query.Result
	// QueryVerdict is a query's pass/fail judgement.
	QueryVerdict = query.Verdict
	// TheoremID selects which of the paper's results a TheoremQuery
	// checks.
	TheoremID = query.Theorem

	// BeliefQuery asks for β_i(φ) at a local state or across the acting
	// states of a proper action.
	BeliefQuery = query.BeliefQuery
	// ConstraintQuery asks for µ(φ@α | α), optionally judged against a
	// threshold.
	ConstraintQuery = query.ConstraintQuery
	// ExpectationQuery asks for E[β_i(φ)@α | α] (Definition 6.1).
	ExpectationQuery = query.ExpectationQuery
	// ThresholdQuery asks for µ(β_i(φ)@α ≥ p | α).
	ThresholdQuery = query.ThresholdQuery
	// TheoremQuery machine-checks one of the paper's results.
	TheoremQuery = query.TheoremQuery
	// IndependenceQuery checks Definition 4.1 with Lemma 4.3 witnesses.
	IndependenceQuery = query.IndependenceQuery
	// TimelineQuery asks for the belief trajectory along one run.
	TimelineQuery = query.TimelineQuery

	// EvalOption configures EvalBatch.
	EvalOption = query.Option

	// MultiItem pairs an engine with the queries EvalMultiBatch
	// evaluates against it.
	MultiItem = query.MultiItem

	// QueryFrame is one emission of a streaming evaluation: a result
	// frame carrying (System, Index, Result), or the single terminal
	// status frame that closes every stream.
	QueryFrame = query.Frame
	// QueryStreamStatus is how a streamed evaluation ended (the
	// terminal frame's status).
	QueryStreamStatus = query.StreamStatus

	// ApproxSpec configures the approximate tier (see WithApprox): a
	// target CI half-width Eps or a direct Samples budget, the failure
	// probability Delta, the base Seed, and Only to skip refinement.
	ApproxSpec = query.ApproxSpec
	// QueryEstimate is a seeded sampled estimate with its exact-rational
	// Hoeffding confidence interval, carried by approx-stage frames and,
	// as provenance, by the refined exact results.
	QueryEstimate = query.Estimate
	// QueryStage labels a frame's tier under WithApprox: StageApprox or
	// StageExact (empty outside approx mode).
	QueryStage = query.Stage

	// QueryBackend selects which exact engine answers a batch (see
	// WithBackend): enumeration, LP, or per-query auto-routing.
	QueryBackend = query.Backend
)

// Approximate-tier stages and flags.
const (
	// StageApprox marks a frame carrying a sampled estimate; its exact
	// refinement (stage StageExact) follows on the same slot unless the
	// spec set Only or the context died in between.
	StageApprox = query.StageApprox
	// StageExact marks a slot's exact result (also used for slots the
	// tier does not support, which skip the approx stage).
	StageExact = query.StageExact
	// FlagCICovered is set on refined results: whether the exact value
	// landed inside the estimate's confidence interval (false is the
	// δ-probability miss, reported honestly rather than as an error).
	FlagCICovered = query.FlagCICovered
)

// Evaluation backends.
const (
	// BackendEnum is the run-enumeration engine, the default; it answers
	// every query kind.
	BackendEnum = query.BackendEnum
	// BackendLP is the exact-rational LP engine, strict: queries outside
	// its fragment (see CanSolveLP) fail their slots with
	// ErrBackendUnsupported.
	BackendLP = query.BackendLP
	// BackendAuto routes each query to the LP engine when supported and
	// to enumeration otherwise.
	BackendAuto = query.BackendAuto
)

// ErrBackendUnsupported is the typed error a strict-lp slot reports when
// the query has no LP form.
var ErrBackendUnsupported = query.ErrBackendUnsupported

// Terminal stream statuses.
const (
	// StreamComplete: every query evaluated (per-slot failures included).
	StreamComplete = query.StreamComplete
	// StreamDeadline: the context's deadline expired mid-batch; emitted
	// frames are exact, the rest carry per-slot deadline errors.
	StreamDeadline = query.StreamDeadline
	// StreamCancelled: the context was cancelled mid-batch.
	StreamCancelled = query.StreamCancelled
)

// Query kinds.
const (
	KindBelief       = query.KindBelief
	KindConstraint   = query.KindConstraint
	KindExpectation  = query.KindExpectation
	KindThreshold    = query.KindThreshold
	KindTheorem      = query.KindTheorem
	KindIndependence = query.KindIndependence
	KindTimeline     = query.KindTimeline
)

// Checkable theorems.
const (
	// TheoremSufficiency is Theorem 4.2.
	TheoremSufficiency = query.TheoremSufficiency
	// TheoremNecessity is Lemma 5.1.
	TheoremNecessity = query.TheoremNecessity
	// TheoremExpectation is Theorem 6.2.
	TheoremExpectation = query.TheoremExpectation
	// TheoremPAK is Theorem 7.1 / Corollary 7.2.
	TheoremPAK = query.TheoremPAK
	// TheoremKoP is Lemma F.1.
	TheoremKoP = query.TheoremKoP
)

// Verdicts.
const (
	VerdictNone = query.VerdictNone
	VerdictPass = query.VerdictPass
	VerdictFail = query.VerdictFail
)

// Eval evaluates one query against the engine. The engine memoizes
// shared work, so repeated and overlapping requests get cheaper; it is
// safe to Eval concurrently on the same engine.
func Eval(e *Engine, q Query) (QueryResult, error) { return query.Eval(e, q) }

// EvalBatch evaluates a query list, by default in parallel across
// GOMAXPROCS workers sharing the engine's caches. Results come back in
// input order and are identical to a serial Eval loop's.
func EvalBatch(e *Engine, qs []Query, opts ...EvalOption) ([]QueryResult, error) {
	return query.EvalBatch(e, qs, opts...)
}

// EvalSystem is EvalBatch over a fresh engine for sys: the one-call form
// for callers that have a system and a query list.
func EvalSystem(sys *System, qs []Query, opts ...EvalOption) ([]QueryResult, error) {
	return query.EvalBatch(core.New(sys), qs, opts...)
}

// EvalMultiBatch is the cross-system fan-out: every item's query batch
// evaluates against that item's engine, all (system, query) pairs
// sharded across one bounded worker pool. Results come back indexed
// [system][query] in input order, exactly equal to a serial nested Eval
// loop's; a failing query occupies only its own slot (Result.Err), and
// the joined error names each failure's (system, query) coordinates.
func EvalMultiBatch(items []MultiItem, opts ...EvalOption) ([][]QueryResult, error) {
	return query.MultiBatch(items, opts...)
}

// EvalMultiSystems is EvalMultiBatch over fresh engines: one query list
// fanned out across several systems.
func EvalMultiSystems(systems []*System, qs []Query, opts ...EvalOption) ([][]QueryResult, error) {
	items := make([]MultiItem, len(systems))
	for i, sys := range systems {
		items[i] = MultiItem{Engine: core.New(sys), Queries: qs}
	}
	return query.MultiBatch(items, opts...)
}

// EvalStream is EvalBatch's streaming form: one result frame per query
// on the returned channel as its worker finishes (completion order;
// serial parallelism streams in input order), then exactly one terminal
// status frame, then the channel closes. Under WithEvalContext a dead
// context drains in-flight queries to their exact results and fails
// unstarted slots in their own frames — the finished prefix is never
// lost. The channel is buffered for the whole batch, so abandoning it
// leaks nothing. EvalBatch itself consumes this stream, which is what
// keeps batch and stream results identical by construction.
func EvalStream(e *Engine, qs []Query, opts ...EvalOption) <-chan QueryFrame {
	return query.EvalStream(e, qs, opts...)
}

// EvalMultiStream is EvalMultiBatch's streaming form: all (system,
// query) pairs shard across one bounded worker pool, each emitting its
// frame (with System/Index coordinates) as it finishes, closed by one
// terminal status frame.
func EvalMultiStream(items []MultiItem, opts ...EvalOption) <-chan QueryFrame {
	return query.EvalMultiStream(items, opts...)
}

// WithParallelism sets the number of EvalBatch workers (n ≤ 1 is
// serial).
func WithParallelism(n int) EvalOption { return query.WithParallelism(n) }

// WithCache controls whether a batch shares the engine's memoization
// (default true); disabled, each query runs against a cold engine.
func WithCache(enabled bool) EvalOption { return query.WithCache(enabled) }

// WithEvalContext binds a batch evaluation to ctx for cooperative
// cancellation: once ctx is done, queries not yet started fail fast in
// their own result slots with the context's error, while in-flight
// queries run to completion — finished slots are always exact, never
// torn.
func WithEvalContext(ctx context.Context) EvalOption { return query.WithContext(ctx) }

// WithApprox enables the approximate tier: every supported query
// (constraint, expectation, threshold, belief-at-local) first answers
// with a seeded, deterministic sampled estimate carrying an
// exact-rational Hoeffding confidence interval (stage StageApprox),
// then refines to the exact value (stage StageExact) with a ciCovered
// self-check — unless the spec set Only, or the context died between
// the two, in which case the estimate stands as the slot's sound
// answer. Same seed and budget ⇒ byte-identical estimates, serial or
// parallel.
func WithApprox(spec ApproxSpec) EvalOption { return query.WithApprox(spec) }

// CanApprox reports whether the approximate tier supports q; other
// queries evaluate exactly even under WithApprox.
func CanApprox(q Query) bool { return query.CanApprox(q) }

// WithBackend selects the exact engine a batch or stream evaluates on.
// Both backends return byte-identical results on the LP fragment — the
// differential harness holds them to that — so the choice is about
// performance and cross-checking, never semantics.
func WithBackend(b QueryBackend) EvalOption { return query.WithBackend(b) }

// ParseBackend parses a backend name from a flag or wire field; the
// empty string means the default enumeration backend.
func ParseBackend(s string) (QueryBackend, error) { return query.ParseBackend(s) }

// CanSolveLP reports whether the LP backend can answer q: a belief,
// constraint or threshold query over a structurally past-based fact.
func CanSolveLP(q Query) bool { return query.CanSolveLP(q) }

// MarshalQuery renders one query as a JSON document.
func MarshalQuery(q Query) ([]byte, error) { return query.Marshal(q) }

// ParseQuery parses one query JSON document.
func ParseQuery(data []byte) (Query, error) { return query.Parse(data) }

// MarshalQueryBatch renders a query list as a JSON array document.
func MarshalQueryBatch(qs []Query) ([]byte, error) { return query.MarshalBatch(qs) }

// ParseQueryBatch parses a JSON array of query documents.
func ParseQueryBatch(data []byte) ([]Query, error) { return query.ParseBatch(data) }

// MarshalFact renders a structural fact as a JSON expression document,
// the inverse of ParseFact. Opaque predicates (Atom, LocalPred, EnvPred)
// do not serialize.
func MarshalFact(f Fact) ([]byte, error) { return encode.MarshalFact(f) }
