package pak_test

import (
	"fmt"
	"sort"

	"pak"
)

// ExampleFiringSquad reproduces the headline numbers of the paper's
// Example 1 through the public API.
func ExampleFiringSquad() {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		panic(err)
	}
	engine := pak.NewEngine(sys)
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))

	mu, _ := engine.ConstraintProb(both, "Alice", "fire")
	tm, _ := engine.ThresholdMeasure(both, "Alice", "fire", pak.Rat(95, 100))
	fmt.Println("µ(both | fire_A) =", mu.RatString())
	fmt.Println("µ(β ≥ 0.95 | fire_A) =", tm.RatString())
	// Output:
	// µ(both | fire_A) = 99/100
	// µ(β ≥ 0.95 | fire_A) = 991/1000
}

// ExampleNewEngine shows the basic belief query: Alice's three
// information states when firing, with her belief that Bob fires too.
func ExampleNewEngine() {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		panic(err)
	}
	engine := pak.NewEngine(sys)
	beliefs, _ := engine.BeliefByActionState(pak.Does("Bob", "fire"), "Alice", "fire")
	states := make([]string, 0, len(beliefs))
	for s := range beliefs {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Printf("%s -> %s\n", s, beliefs[s].RatString())
	}
	// Output:
	// t2|go=1,sent,recv=No -> 0
	// t2|go=1,sent,recv=Yes -> 1
	// t2|go=1,sent,recv=none -> 99/100
}

// ExampleThat walks the Theorem 5.2 construction: the constraint value is
// p while the threshold is met with probability only ε.
func ExampleThat() {
	sys, err := pak.That(pak.Rat(9, 10), pak.Rat(1, 10))
	if err != nil {
		panic(err)
	}
	engine := pak.NewEngine(sys)
	bit := pak.LocalContains("j", "bit=1")

	mu, _ := engine.ConstraintProb(bit, "i", "alpha")
	tm, _ := engine.ThresholdMeasure(bit, "i", "alpha", pak.Rat(9, 10))
	bel, _ := engine.Belief(bit, "i", "i1:recv=m")
	fmt.Println("µ =", mu.RatString())
	fmt.Println("µ(β ≥ p | α) =", tm.RatString())
	fmt.Println("non-revealing β =", bel.RatString())
	// Output:
	// µ = 9/10
	// µ(β ≥ p | α) = 1/10
	// non-revealing β = 8/9
}

// ExampleBelieves nests epistemic operators: what j believes about i's
// beliefs is an ordinary event with an exact probability.
func ExampleBelieves() {
	sys, err := pak.That(pak.Rat(9, 10), pak.Rat(1, 10))
	if err != nil {
		panic(err)
	}
	bit := pak.LocalContains("j", "bit=1")
	iConvinced := pak.Believes("i", pak.Rat(9, 10), bit)
	// j holds bit=1 (run 1) at time 1.
	deg := pak.BeliefDegree(sys, "j", iConvinced, 1, 1)
	fmt.Println("β_j(B_i^{9/10}(bit=1)) =", deg.RatString())
	// Output:
	// β_j(B_i^{9/10}(bit=1)) = 1/9
}

// ExampleEngine_CheckExpectation machine-checks the paper's main theorem
// on the improved firing squad.
func ExampleEngine_CheckExpectation() {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSImproved)
	if err != nil {
		panic(err)
	}
	engine := pak.NewEngine(sys)
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	rep, _ := engine.CheckExpectation(both, "Alice", "fire")
	fmt.Println("µ =", rep.ConstraintProb.RatString())
	fmt.Println("E[β] =", rep.ExpectedBelief.RatString())
	fmt.Println("equal =", rep.Equal())
	// Output:
	// µ = 990/991
	// E[β] = 990/991
	// equal = true
}

// ExampleEngine_RefrainAnalysis derives Section 8's improvement from the
// original system alone.
func ExampleEngine_RefrainAnalysis() {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		panic(err)
	}
	engine := pak.NewEngine(sys)
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	rep, _ := engine.RefrainAnalysis(both, "Alice", "fire", pak.Rat(95, 100))
	fmt.Println("original  =", rep.Original.RatString())
	fmt.Println("predicted =", rep.Predicted.RatString())
	fmt.Println("improves  =", rep.Improves())
	// Output:
	// original  = 99/100
	// predicted = 990/991
	// improves  = true
}

// ExampleUnfold builds a tiny coin-flip protocol and unfolds it.
func ExampleUnfold() {
	model := pak.FuncModel{
		AgentNames: []string{"i"},
		Init: []pak.WeightedGlobal{
			pak.InitialState(pak.Global{Env: "e", Locals: []string{"start"}}, pak.One()),
		},
		Step: func(agent int, local string, t int) []pak.WeightedAction {
			return pak.Mix(
				pak.WithProb("heads", pak.Rat(1, 2)),
				pak.WithProb("tails", pak.Rat(1, 2)),
			)
		},
		Trans: func(g pak.Global, acts []string, envAct string, t int) (pak.Global, error) {
			return pak.Global{Env: g.Env, Locals: []string{acts[0]}}, nil
		},
		Bound: 1,
	}
	sys, err := pak.Unfold(model)
	if err != nil {
		panic(err)
	}
	heads := pak.RunsSatisfying(sys, pak.Performed("i", "heads"))
	fmt.Println("runs:", sys.NumRuns())
	fmt.Println("µ(heads) =", sys.Measure(heads).RatString())
	// Output:
	// runs: 2
	// µ(heads) = 1/2
}

// ExampleNewSlice computes common p-belief and common knowledge at the
// firing time, exhibiting the coordinated-attack contrast.
func ExampleNewSlice() {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		panic(err)
	}
	slice, err := pak.NewSlice(sys, 2)
	if err != nil {
		panic(err)
	}
	both := pak.RunsSatisfying(sys, pak.Sometime(
		pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))))
	group := []pak.AgentID{0, 1}

	ck, _ := slice.CommonKnowledge(group, both)
	cb, _ := slice.CommonP(group, both, pak.Rat(1, 2))
	fmt.Println("common knowledge:", sys.Measure(ck).RatString())
	fmt.Println("common 1/2-belief:", sys.Measure(cb).RatString())
	// Output:
	// common knowledge: 0
	// common 1/2-belief: 99/200
}

// ExampleMutexSystem analyzes the relaxed mutual-exclusion scenario.
func ExampleMutexSystem() {
	sys, err := pak.MutexSystem(pak.Rat(1, 10))
	if err != nil {
		panic(err)
	}
	engine := pak.NewEngine(sys)
	mu, _ := engine.ConstraintProb(pak.MutexExclusion("i"), "i", pak.ActEnter)
	fmt.Println("µ(exclusion | enter) =", mu.RatString())
	// Output:
	// µ(exclusion | enter) = 29/31
}

// ExampleConsensusSystem analyzes the bounded randomized consensus.
func ExampleConsensusSystem() {
	sys, err := pak.ConsensusSystem(pak.Rat(1, 10))
	if err != nil {
		panic(err)
	}
	engine := pak.NewEngine(sys)
	mu0, _ := engine.ConstraintProb(pak.Agreement(), "i", pak.ActDecide0)
	mu1, _ := engine.ConstraintProb(pak.Agreement(), "i", pak.ActDecide1)
	fmt.Println("µ(agree | decide0) =", mu0.RatString())
	fmt.Println("µ(agree | decide1) =", mu1.RatString())
	// Output:
	// µ(agree | decide0) = 28/29
	// µ(agree | decide1) = 10/11
}
