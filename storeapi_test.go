package pak_test

import (
	"errors"
	"testing"

	"pak"
)

// TestStoreFacade drives the re-exported store API end to end: a disk
// store round-trips an entry under its content address, misses and
// corruption surface as the exported sentinels, and the service
// accepts the store and quota options.
func TestStoreFacade(t *testing.T) {
	st, err := pak.OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entry := pak.StoreEntry{
		System: "nsquad(n=2,loss=1/10,improved=false)",
		Query:  []byte(`{"kind":"constraint","fact":{"kind":"true"},"agent":"General","action":"fire"}`),
		Value:  []byte(`{"kind":"constraint","value":"1"}`),
	}
	key := pak.NewStoreKey(entry.System, entry.Query)
	if _, err := st.Get(key); !errors.Is(err, pak.StoreErrNotFound) {
		t.Fatalf("cold Get err = %v, want StoreErrNotFound", err)
	}
	if err := st.Put(entry); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(key)
	if err != nil || string(got) != string(entry.Value) {
		t.Fatalf("Get = (%q, %v), want the stored value", got, err)
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("Len = (%d, %v), want 1", n, err)
	}

	mem := pak.NewMemoryStore()
	if err := mem.Put(entry); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Get(key); err != nil {
		t.Fatalf("memory Get: %v", err)
	}

	// Both options wire into a server without touching the network.
	if srv := pak.NewService(nil, pak.WithServiceResultStore(mem), pak.WithServiceClientQuota(2)); srv == nil {
		t.Fatal("NewService returned nil")
	}
}
