package pak_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - exact rational vs float64 measure computation (the cost of the
//     paper-faithful exactness guarantee);
//   - the Jeffrey-decomposition path vs the direct expectation query for
//     Theorem 6.2's two sides;
//   - the price of the local-state independence check (Definition 4.1)
//     relative to the raw constraint query;
//   - unfolding a protocol vs hand-building the equivalent tree (T-hat).
//
// Run with: go test -bench=Ablation -benchmem

import (
	"testing"

	"pak"
	"pak/internal/randsys"
)

// ablationSystem builds a moderately sized random system shared by the
// measure ablations.
func ablationSystem(b *testing.B) *pak.System {
	b.Helper()
	cfg := randsys.Default(11)
	cfg.Depth = 6
	cfg.ActionTime = 3
	sys, err := randsys.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkAblationMeasureExact measures exact big.Rat event measure.
func BenchmarkAblationMeasureExact(b *testing.B) {
	sys := ablationSystem(b)
	full := sys.FullSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.Measure(full).Sign() <= 0 {
			b.Fatal("bad measure")
		}
	}
}

// BenchmarkAblationMeasureFloat measures the float64 fast path on the
// same event; comparing with MeasureExact quantifies the exactness tax.
func BenchmarkAblationMeasureFloat(b *testing.B) {
	sys := ablationSystem(b)
	full := sys.FullSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.MeasureFloat(full) <= 0 {
			b.Fatal("bad measure")
		}
	}
}

// BenchmarkAblationDirectExpectation computes both sides of Theorem 6.2
// with the direct engine queries.
func BenchmarkAblationDirectExpectation(b *testing.B) {
	sys := ablationSystem(b)
	fact := pak.RandPastFact(sys, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pak.NewEngine(sys)
		mu, err := e.ConstraintProb(fact, "a0", randsys.DesignatedAction)
		if err != nil {
			b.Fatal(err)
		}
		exp, err := e.ExpectedBelief(fact, "a0", randsys.DesignatedAction)
		if err != nil {
			b.Fatal(err)
		}
		if mu.Cmp(exp) != 0 {
			b.Fatal("Theorem 6.2 violated")
		}
	}
}

// BenchmarkAblationJeffreyExpectation computes the same two quantities via
// the Jeffrey decomposition (per-cell weights and posteriors); the delta
// against DirectExpectation is the cost of materializing the proof
// structure.
func BenchmarkAblationJeffreyExpectation(b *testing.B) {
	sys := ablationSystem(b)
	fact := pak.RandPastFact(sys, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pak.NewEngine(sys)
		d, err := e.Decompose(fact, "a0", randsys.DesignatedAction)
		if err != nil {
			b.Fatal(err)
		}
		if d.ConstraintProb.Cmp(d.ExpectedBelief) != 0 {
			b.Fatal("Theorem 6.2 violated")
		}
	}
}

// BenchmarkAblationConstraintOnly is the baseline engine query without the
// independence check.
func BenchmarkAblationConstraintOnly(b *testing.B) {
	sys := ablationSystem(b)
	fact := pak.RandPastFact(sys, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pak.NewEngine(sys)
		if _, err := e.ConstraintProb(fact, "a0", randsys.DesignatedAction); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWithIndependenceCheck adds the full Definition 4.1
// check over every local state; the delta against ConstraintOnly is the
// hypothesis-verification overhead.
func BenchmarkAblationWithIndependenceCheck(b *testing.B) {
	sys := ablationSystem(b)
	fact := pak.RandPastFact(sys, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pak.NewEngine(sys)
		if _, err := e.ConstraintProb(fact, "a0", randsys.DesignatedAction); err != nil {
			b.Fatal(err)
		}
		rep, err := e.LocalStateIndependence(fact, "a0", randsys.DesignatedAction)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Independent {
			b.Fatal("past fact must be independent")
		}
	}
}

// BenchmarkAblationHandBuiltThat builds T-hat directly as a tree.
func BenchmarkAblationHandBuiltThat(b *testing.B) {
	p, eps := pak.Rat(9, 10), pak.Rat(1, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pak.That(p, eps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUnfoldedThat builds the equivalent system by unfolding
// the protocol model; the delta against HandBuiltThat is the cost of the
// generic Section 2.2 construction.
func BenchmarkAblationUnfoldedThat(b *testing.B) {
	p, eps := pak.Rat(9, 10), pak.Rat(1, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pak.UnfoldThat(p, eps); err != nil {
			b.Fatal(err)
		}
	}
}
