package pak

import (
	"math/big"

	"pak/internal/adversary"
	"pak/internal/encode"
	"pak/internal/paper"
	"pak/internal/randsys"
)

// The paper's concrete systems, re-exported.

// FSVariant selects the firing-squad variant.
type FSVariant = paper.FSVariant

const (
	// FSOriginal is Example 1's FS protocol.
	FSOriginal = paper.FSOriginal
	// FSImproved is the Section 8 refinement (never fire on 'No').
	FSImproved = paper.FSImproved
)

// Figure1 builds the paper's Figure 1 mixed-action counterexample system.
func Figure1() (*System, error) { return paper.Figure1() }

// That builds the pps T-hat(p, ε) of Figure 2 / Theorem 5.2 (requires
// 0 < ε < p < 1).
func That(p, eps *big.Rat) (*System, error) { return paper.That(p, eps) }

// FiringSquad unfolds Example 1's relaxed firing squad with the given
// per-message loss probability (the paper uses 1/10) and variant.
func FiringSquad(loss *big.Rat, variant FSVariant) (*System, error) {
	return paper.FiringSquad(loss, variant)
}

// FiringSquadModel returns Example 1's joint protocol without unfolding,
// for direct simulation.
func FiringSquadModel(loss *big.Rat, variant FSVariant) (Model, error) {
	return paper.FiringSquadModel(loss, variant)
}

// Adversary handling (paper Section 2's treatment of nondeterminism),
// re-exported.
type (
	// Choice is one nondeterministic decision.
	Choice = adversary.Choice
	// Assignment fixes every choice: a complete adversary.
	Assignment = adversary.Assignment
	// AdversarySpace enumerates nondeterministic choices.
	AdversarySpace = adversary.Space
	// AdversaryInstance is one resolved adversary with its pps.
	AdversaryInstance = adversary.Instance
	// ConstraintRange is the min/max envelope of a constraint over a
	// family of adversaries.
	ConstraintRange = adversary.ConstraintRange
)

// NewSpace validates and returns an adversary choice space.
func NewSpace(choices ...Choice) (*AdversarySpace, error) {
	return adversary.NewSpace(choices...)
}

// Resolve builds one pps per complete adversary assignment.
func Resolve(space *AdversarySpace, build func(Assignment) (*System, error)) ([]AdversaryInstance, error) {
	return adversary.Resolve(space, build)
}

// ConstraintEnvelope evaluates µ(φ@α | α) over a family of adversaries.
func ConstraintEnvelope(instances []AdversaryInstance, f Fact, agent, action string) (ConstraintRange, error) {
	return adversary.ConstraintEnvelope(instances, f, agent, action)
}

// Serialization, re-exported.

// MarshalSystem renders sys as JSON.
func MarshalSystem(sys *System) ([]byte, error) { return encode.Marshal(sys) }

// UnmarshalSystem parses system JSON and rebuilds the validated System.
func UnmarshalSystem(data []byte) (*System, error) { return encode.Unmarshal(data) }

// ParseFact parses a fact expression document (see internal/encode for the
// operator list).
func ParseFact(data []byte) (Fact, error) { return encode.ParseFact(data) }

// Random system generation for testing and benchmarking, re-exported.

// RandConfig parameterizes random system generation.
type RandConfig = randsys.Config

// RandDefault returns a moderate random-system configuration.
func RandDefault(seed int64) RandConfig { return randsys.Default(seed) }

// RandSystem generates a random system with a designated proper action
// (randsys.DesignatedAction) for agent "a0".
func RandSystem(cfg RandConfig) (*System, error) { return randsys.Generate(cfg) }

// RandPastFact returns a random past-based fact over sys.
func RandPastFact(sys *System, seed int64) Fact { return randsys.PastFact(sys, seed) }

// RandRunFact returns a random run-based (generally not past-based) fact.
func RandRunFact(sys *System, seed int64) Fact { return randsys.RunFact(sys, seed) }
