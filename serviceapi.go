package pak

import (
	"net/http"
	"time"

	"pak/internal/query"
	"pak/internal/service"
)

// The service layer, re-exported from internal/service: the HTTP/JSON
// front end that cmd/pakd serves, embeddable in any Go HTTP server. It
// resolves scenario specs against a registry, keeps one memoizing
// engine per canonical spec across requests, and evaluates
// ParseQueryBatch documents with cross-system fan-out via
// EvalMultiBatch. See examples/service for the wire walkthrough.
type (
	// ServiceServer answers the /v1/scenarios and /v1/eval endpoints.
	ServiceServer = service.Server
	// ServiceOption configures a ServiceServer.
	ServiceOption = service.Option
	// ServiceEvalRequest is the /v1/eval request body: scenario specs
	// plus a query-batch document (pak.ParseQueryBatch's format).
	ServiceEvalRequest = service.EvalRequest
	// ServiceEvalResponse is the /v1/eval response body: per-system
	// results in request order with per-query error isolation.
	ServiceEvalResponse = service.EvalResponse
	// ServiceSystemResult is one system's evaluated batch.
	ServiceSystemResult = service.SystemResult
	// QueryResultDoc is the wire form of a QueryResult: exact rationals
	// as RatStrings, witnesses as run counts, errors as messages.
	QueryResultDoc = query.ResultDoc
	// ServiceStreamResultFrame is one result line of a POST
	// /v1/eval/stream NDJSON response: the slot's coordinates plus the
	// exact QueryResultDoc the buffered /v1/eval path would return.
	ServiceStreamResultFrame = service.StreamResultFrame
	// ServiceStreamStatusFrame is the terminal line of every
	// /v1/eval/stream response: complete, deadline, cancelled, or a
	// mid-stream request-level error.
	ServiceStreamStatusFrame = service.StreamStatusFrame
	// ServiceStatsResponse is the GET /v1/stats body: the shared engine
	// cache's effectiveness counters.
	ServiceStatsResponse = service.StatsResponse
	// ServiceCacheStats snapshots the engine cache (len/cap, hits,
	// misses, evictions, shared builds).
	ServiceCacheStats = service.CacheStats
)

// NewService returns a service over the registry (nil means
// Scenarios(), the built-in registry).
func NewService(reg *ScenarioRegistry, opts ...ServiceOption) *ServiceServer {
	return service.New(reg, opts...)
}

// ServiceHandler returns the ready-to-mount HTTP handler over the
// built-in registry: http.ListenAndServe(addr, pak.ServiceHandler())
// is a one-line pakd.
func ServiceHandler(opts ...ServiceOption) http.Handler {
	return service.New(nil, opts...).Handler()
}

// WithServiceParallelism caps the evaluation workers one request may
// use (default GOMAXPROCS).
func WithServiceParallelism(n int) ServiceOption { return service.WithMaxParallelism(n) }

// WithServiceMaxQueries caps the total (system, query) pairs one eval
// request may submit.
func WithServiceMaxQueries(n int) ServiceOption { return service.WithMaxQueries(n) }

// WithServiceMaxSystems caps the systems one eval request may name
// (each distinct scenario spec builds and retains an engine).
func WithServiceMaxSystems(n int) ServiceOption { return service.WithMaxSystems(n) }

// WithServiceEngineCache bounds the engines retained across requests
// (LRU over canonical specs; n ≤ 0 = unbounded). Eviction is invisible
// — a rebuilt engine returns byte-identical results — it only costs
// cache warmth.
func WithServiceEngineCache(n int) ServiceOption { return service.WithEngineCacheSize(n) }

// WithServiceRequestTimeout bounds one eval request's wall clock; on
// expiry the client receives a 504 JSON error and evaluation stops
// cooperatively at the next query boundary (d ≤ 0 = no deadline).
func WithServiceRequestTimeout(d time.Duration) ServiceOption { return service.WithRequestTimeout(d) }
