package pak

import (
	"math/big"

	"pak/internal/core"
	"pak/internal/epistemic"
	"pak/internal/logic"
	"pak/internal/paper"
)

// Extended analysis surface: temporal fact operators, the Jeffrey
// conditionalization view of Theorem 6.2, belief timelines, and the
// protocol form of T-hat.

// Temporal operators (see internal/logic for semantics).

// AtTime lifts φ to the run-based fact "φ holds at time t of the run".
func AtTime(t int, f Fact) Fact { return logic.AtTime(t, f) }

// Once returns "φ held at some point up to now" (past-based if φ is).
func Once(f Fact) Fact { return logic.Once(f) }

// SoFar returns "φ held at every point up to now" (past-based if φ is).
func SoFar(f Fact) Fact { return logic.SoFar(f) }

// Eventually returns "φ holds now or later in the run".
func Eventually(f Fact) Fact { return logic.Eventually(f) }

// Henceforth returns "φ holds now and at every later point of the run".
func Henceforth(f Fact) Fact { return logic.Henceforth(f) }

// DoesAny returns the fact that agent currently performs one of actions.
func DoesAny(agent string, actions ...string) Fact { return logic.DoesAny(agent, actions...) }

// Jeffrey conditionalization (the executable proof of Theorem 6.2).
type (
	// JeffreyCell is one cell of the partition of R_α by acting state.
	JeffreyCell = core.JeffreyCell
	// JeffreyDecomposition is the full law-of-total-probability view of
	// µ(φ@α | α), with per-cell weights and posteriors.
	JeffreyDecomposition = core.JeffreyDecomposition
	// TimelinePoint is one step of a belief timeline.
	TimelinePoint = core.TimelinePoint
	// RefrainReport is the result of Engine.RefrainAnalysis: the paper's
	// Section 8 pruning insight evaluated from the original system.
	RefrainReport = core.RefrainReport
	// Audit is the one-call complete constraint analysis returned by
	// Engine.AuditConstraint.
	Audit = core.Audit
)

// Epistemic operators: beliefs and knowledge as facts, so they nest and
// can serve as constraint conditions (they are past-based, hence
// local-state independent by Lemma 4.3(b)).

// Believes returns the fact B_i^p(φ): agent's degree of belief in φ is at
// least p at the current point.
func Believes(agent string, p *big.Rat, f Fact) Fact { return epistemic.Believes(agent, p, f) }

// Knows returns the fact K_i(φ): agent knows φ at the current point.
func Knows(agent string, f Fact) Fact { return epistemic.Knows(agent, f) }

// EveryoneBelieves returns E_G^p(φ): every agent in the group p-believes φ.
func EveryoneBelieves(agents []string, p *big.Rat, f Fact) Fact {
	return epistemic.EveryoneBelieves(agents, p, f)
}

// MutualBelief returns the k-level iterated everyone-believes fact, the
// syntactic approximation of common p-belief.
func MutualBelief(agents []string, p *big.Rat, f Fact, k int) Fact {
	return epistemic.MutualBelief(agents, p, f, k)
}

// BeliefDegree returns β_i(φ) at the point (r, t) of sys.
func BeliefDegree(sys *System, agent string, f Fact, r RunID, t int) *big.Rat {
	return epistemic.BeliefDegree(sys, agent, f, r, t)
}

// UnfoldThat unfolds the protocol form of the Figure 2 construction
// T-hat(p, ε); it is semantically equivalent to That (the hand-built
// tree), which the test suite verifies.
func UnfoldThat(p, eps *big.Rat) (*System, error) { return paper.UnfoldThat(p, eps) }
