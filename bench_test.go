package pak_test

// The benchmark harness: one benchmark per paper experiment (E1..E10, see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for the recorded
// paper-vs-measured values), plus performance benchmarks characterizing
// the engine itself. Run with:
//
//	go test -bench=. -benchmem
//
// Every experiment benchmark also *verifies* its result on each iteration
// (b.Fatal on mismatch), so the bench run doubles as a reproduction run.

import (
	"fmt"
	bigmath "math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pak"
	"pak/internal/experiments"
	"pak/internal/montecarlo"
	"pak/internal/pps"
	"pak/internal/randsys"
	"pak/internal/runset"
)

// requireMatch runs one experiment and fails the benchmark if any row
// diverges from the paper.
func requireMatch(b *testing.B, build func() (experiments.Result, error)) {
	b.Helper()
	res, err := build()
	if err != nil {
		b.Fatal(err)
	}
	if !res.AllMatch() {
		for _, row := range res.Rows {
			if !row.Match {
				b.Fatalf("%s: %s: paper=%s measured=%s", res.ID, row.Quantity, row.Paper, row.Measured)
			}
		}
	}
}

// BenchmarkE1FiringSquad regenerates Example 1's exact claims: the
// constraint value 99/100, Alice's information states {1, 0, 99/100}, and
// the threshold measures 991/1000 and 9/1000.
func BenchmarkE1FiringSquad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E1FiringSquad)
	}
}

// BenchmarkE2Figure1 regenerates the Figure 1 counterexamples (sufficiency
// and expectation both fail without local-state independence).
func BenchmarkE2Figure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E2Figure1)
	}
}

// BenchmarkE3Theorem52Sweep regenerates the Figure 2 construction sweep:
// µ = p while µ(β ≥ p | α) = ε and the non-revealing belief is
// (p−ε)/(1−ε).
func BenchmarkE3Theorem52Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E3Theorem52)
	}
}

// BenchmarkE4ExpectationTheorem machine-checks Theorem 6.2 on 25 random
// systems per iteration, across the four (action × fact) modes.
func BenchmarkE4ExpectationTheorem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, func() (experiments.Result, error) {
			return experiments.E4Expectation(25, int64(i)+1)
		})
	}
}

// BenchmarkE5PAKFrontier regenerates the Theorem 7.1 / Corollary 7.2
// frontier on the T-hat family and FS.
func BenchmarkE5PAKFrontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E5PAKFrontier)
	}
}

// BenchmarkE6ImprovedFS regenerates the Section 8 improvement
// (99/100 → 990/991 ≈ 0.99899).
func BenchmarkE6ImprovedFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E6ImprovedFS)
	}
}

// BenchmarkE7MonteCarloConvergence cross-validates the exact engine with
// 30k samples per iteration (Hoeffding 99% CIs must contain the exact
// values).
func BenchmarkE7MonteCarloConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, func() (experiments.Result, error) {
			return experiments.E7MonteCarlo(30_000, int64(i)+1)
		})
	}
}

// BenchmarkE8KoPLimit regenerates the degenerate-threshold (Knowledge of
// Preconditions) limit on the lossless firing squad.
func BenchmarkE8KoPLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E8KoPLimit)
	}
}

// BenchmarkE9IndependenceLemma machine-checks Lemma 4.3 on 25 random
// systems per iteration and re-detects the Figure 1 violation.
func BenchmarkE9IndependenceLemma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, func() (experiments.Result, error) {
			return experiments.E9Independence(25, int64(i)+1)
		})
	}
}

// BenchmarkE10CommonBelief computes the Monderer–Samet common p-belief
// fixed points on T-hat and FS.
func BenchmarkE10CommonBelief(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E10CommonBelief)
	}
}

// BenchmarkE11CommonKnowledge contrasts common knowledge with common
// p-belief on the lossy vs lossless firing squad (coordinated attack).
func BenchmarkE11CommonKnowledge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E11CommonKnowledge)
	}
}

// BenchmarkE12Martingale verifies the Bayesian belief martingale
// (E[β at t] = prior) exactly on T-hat and FS.
func BenchmarkE12Martingale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E12Martingale)
	}
}

// BenchmarkE13LossSensitivity sweeps the loss probability and verifies the
// closed forms 1−ℓ² and (1−ℓ²)/(1−ℓ²(1−ℓ)) exactly.
func BenchmarkE13LossSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E13LossSensitivity)
	}
}

// BenchmarkE14NSquad verifies the generalized n-agent closed forms.
func BenchmarkE14NSquad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E14NSquad)
	}
}

// --- Performance benchmarks ---

// BenchmarkPerfUnfoldFiringSquad measures protocol unfolding (the paper's
// Section 2.2 construction of a pps from a joint protocol).
func BenchmarkPerfUnfoldFiringSquad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfEngineQueries measures a full constraint analysis (µ, E[β],
// independence, PAK) on the firing squad, engine construction included.
func BenchmarkPerfEngineQueries(b *testing.B) {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		b.Fatal(err)
	}
	both := pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pak.NewEngine(sys)
		if _, err := e.ConstraintProb(both, "Alice", "fire"); err != nil {
			b.Fatal(err)
		}
		if _, err := e.ExpectedBelief(both, "Alice", "fire"); err != nil {
			b.Fatal(err)
		}
		if _, err := e.CheckPAKSquare(both, "Alice", "fire", pak.Rat(1, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfGenerateScale measures random-system generation and the
// Theorem 6.2 check as the tree deepens.
func BenchmarkPerfGenerateScale(b *testing.B) {
	for _, depth := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := randsys.Default(int64(i) + 1)
				cfg.Depth = depth
				cfg.ActionTime = depth / 2
				sys, err := randsys.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				e := pak.NewEngine(sys)
				rep, err := e.CheckExpectation(pak.RandPastFact(sys, int64(i)), "a0", randsys.DesignatedAction)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Holds() {
					b.Fatal("Theorem 6.2 violated")
				}
			}
		})
	}
}

// BenchmarkPerfMeasureQueries measures exact event-measure computation on
// a generated system.
func BenchmarkPerfMeasureQueries(b *testing.B) {
	cfg := randsys.Default(7)
	cfg.Depth = 6
	cfg.ActionTime = 3
	sys, err := randsys.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	full := sys.FullSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := sys.Measure(full); got.Sign() <= 0 {
			b.Fatal("bad measure")
		}
	}
}

// BenchmarkPerfSampling measures run sampling throughput on the firing
// squad system.
func BenchmarkPerfSampling(b *testing.B) {
	sys, err := pak.FiringSquad(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		b.Fatal(err)
	}
	s := montecarlo.NewSampler(sys, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.SampleRun()
	}
}

// BenchmarkPerfProtocolSim measures protocol-level simulation throughput
// (no unfolding).
func BenchmarkPerfProtocolSim(b *testing.B) {
	m, err := pak.FiringSquadModel(pak.Rat(1, 10), pak.FSOriginal)
	if err != nil {
		b.Fatal(err)
	}
	ps := montecarlo.NewProtocolSampler(m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfNSquadScale measures unfolding + analysis of the n-agent
// firing squad as the squad grows (tree size is exponential in n).
func BenchmarkPerfNSquadScale(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := pak.NFiringSquadSystem(n, pak.Rat(1, 10), false)
				if err != nil {
					b.Fatal(err)
				}
				e := pak.NewEngine(sys)
				if _, err := e.ConstraintProb(pak.AllFire(n), "General", "fire"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE15QueryBatch regenerates the query-layer invariants (batch =
// serial, exact, order-preserving) per iteration.
func BenchmarkE15QueryBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireMatch(b, experiments.E15QueryBatch)
	}
}

// --- Query-batch benchmarks (serial vs parallel) ---
//
// The workload is the full theorem-check battery over the 4-agent firing
// squad (every agent × every analysis kind and theorem, 40 queries).
// Each iteration starts from a cold engine so the measured time includes
// the shared-cache build; the parallel variants must beat the serial
// loop on multicore hardware, which TestQueryBatchSpeedup (in
// pak_test.go) asserts outright.

// benchQueryWorkload builds the benchmark system and workload once.
func benchQueryWorkload(b *testing.B) (*pak.System, []pak.Query) {
	b.Helper()
	sys, err := pak.NFiringSquadSystem(4, pak.Rat(1, 10), false)
	if err != nil {
		b.Fatal(err)
	}
	return sys, experiments.TheoremWorkload(4)
}

// BenchmarkQueryBatchSerialLoop is the baseline the tentpole moves away
// from: one Eval call after another on a shared engine.
func BenchmarkQueryBatchSerialLoop(b *testing.B) {
	sys, qs := benchQueryWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pak.NewEngine(sys)
		for _, q := range qs {
			if _, err := pak.Eval(e, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQueryBatchParallel measures EvalBatch at increasing
// parallelism over a shared cold engine.
func BenchmarkQueryBatchParallel(b *testing.B) {
	sys, qs := benchQueryWorkload(b)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := pak.NewEngine(sys)
				if _, err := pak.EvalBatch(e, qs, pak.WithParallelism(par)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Service-hardening benchmarks (cold builds, eviction) ---

// benchPost POSTs one eval request and requires a 200.
func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("eval status %d", resp.StatusCode)
	}
}

// BenchmarkColdBuildSerialVsParallel measures one request naming four
// un-cached systems against a fresh server: the serial variant pays
// sum-of-unfolds, the parallel variant pays roughly max-of-unfolds.
// The gap is the value of the concurrent cold-build path.
func BenchmarkColdBuildSerialVsParallel(b *testing.B) {
	// Empty query batch: the request measures pure build cost.
	body := `{"systems": ["random(seed=1,depth=6,branch=2)", "random(seed=2,depth=6,branch=2)",
		"random(seed=3,depth=6,branch=2)", "random(seed=4,depth=6,branch=2)"], "queries": []}`
	for _, workers := range []int{1, 4} {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("parallel=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// A fresh server per iteration keeps every build cold.
				ts := httptest.NewServer(pak.ServiceHandler(pak.WithServiceParallelism(workers)))
				b.StartTimer()
				benchPost(b, ts.URL, body)
				b.StopTimer()
				ts.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEvalWithEviction measures a request stream alternating over
// three systems through a capacity-1 cache (every request rebuilds its
// engine) versus a cache that fits the working set (every request after
// the first is warm). The gap prices eviction thrash — and motivates
// sizing -engine-cache to the hot working set.
func BenchmarkEvalWithEviction(b *testing.B) {
	batch, err := pak.MarshalQueryBatch([]pak.Query{
		pak.ConstraintQuery{Fact: pak.AllFire(2), Agent: "General", Action: "fire"},
		pak.ExpectationQuery{Fact: pak.AllFire(2), Agent: "General", Action: "fire"},
	})
	if err != nil {
		b.Fatal(err)
	}
	systems := []string{"nsquad(2)", "fsquad", "nsquad(3)"}
	bodies := make([]string, len(systems))
	for i, s := range systems {
		bodies[i] = fmt.Sprintf(`{"systems": [%q], "queries": %s}`, s, batch)
	}
	for _, cacheSize := range []int{1, 8} {
		name := fmt.Sprintf("cache=%d", cacheSize)
		if cacheSize == 1 {
			name = "cache=1-thrash"
		}
		b.Run(name, func(b *testing.B) {
			ts := httptest.NewServer(pak.ServiceHandler(pak.WithServiceEngineCache(cacheSize)))
			defer ts.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, ts.URL, bodies[i%len(bodies)])
			}
		})
	}
}

// BenchmarkQueryBatchColdEngines measures the WithCache(false) mode:
// every query on its own engine, no shared memoization. The gap to the
// shared-cache runs is the value of the engine's memoization.
func BenchmarkQueryBatchColdEngines(b *testing.B) {
	sys, qs := benchQueryWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pak.NewEngine(sys)
		if _, err := pak.EvalBatch(e, qs, pak.WithParallelism(8), pak.WithCache(false)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeSharedCache pins the tentpole's economics: a sweep
// whose N assignments resolve through the shared engine cache
// (pak.ResolveSweep + SweepItems, the registry/EngineCache path) versus
// the pre-refactor shape — N isolated adversary.Resolve builds per
// evaluation, every system unfolded and every engine cold each time.
// After the first iteration the shared-cache path pays zero unfolds and
// folds over warm memoization; the isolated path rebuilds everything,
// so the per-op gap is the cost the old private build path hid.
func BenchmarkEnvelopeSharedCache(b *testing.B) {
	const space = "sweep(nsquad,n=3,loss=0..1/2/1/10)"
	inner := pak.ConstraintQuery{Fact: pak.AllFire(3), Agent: "General", Action: "fire"}

	b.Run("shared-cache-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := pak.EvalSweep(space, inner)
			if err != nil || out.Result.Envelope.Visited != 6 {
				b.Fatalf("sweep: %v (%+v)", err, out.Result.Envelope)
			}
		}
	})

	b.Run("isolated-resolve", func(b *testing.B) {
		losses := []string{"0", "1/10", "1/5", "3/10", "2/5", "1/2"}
		space, err := pak.NewSpace(pak.Choice{Name: "loss", Options: losses})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			instances, err := pak.Resolve(space, func(a pak.Assignment) (*pak.System, error) {
				return pak.NFiringSquadSystem(3, pak.MustRat(a["loss"]), false)
			})
			if err != nil {
				b.Fatal(err)
			}
			env, err := pak.ConstraintEnvelope(instances, pak.AllFire(3), "General", "fire")
			if err != nil || env.Min == nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnvelopeStructureSharing isolates the memo-seeding half of
// the sweep economics from the engine cache: every iteration builds all
// engines fresh (nothing crosses iterations), and the only variable is
// whether each assignment's engine is independent (New) or seeded from
// its predecessor (NewEngineSeeded). The assignments of one sweep
// differ only in adversary weights, so the seeded chain pays the
// structural scans — where actions are performed, where the fact holds
// — once for the whole sweep instead of once per assignment; the
// per-op gap is that saved re-scanning. Serial evaluation keeps the
// comparison clean of scheduling noise.
func BenchmarkEnvelopeStructureSharing(b *testing.B) {
	const n = 4
	// loss=0 is deliberately absent: a zero-weight branch is pruned from
	// the unfold, so that assignment has a different shape and cannot
	// share (the chain would just skip it; the bench wants full sharing).
	losses := []string{"1/10", "1/5", "3/10", "2/5", "1/2"}
	systems := make([]*pak.System, len(losses))
	for i, l := range losses {
		sys, err := pak.NFiringSquadSystem(n, pak.MustRat(l), false)
		if err != nil {
			b.Fatal(err)
		}
		systems[i] = sys
	}
	// The run-based reading of the squad constraint ("the run is one
	// where everyone eventually fires together") prices each Holds call
	// at a scan of the run, so the fact-extension sets the chain shares
	// carry real weight next to the per-assignment measure arithmetic.
	inner := pak.ConstraintQuery{Fact: pak.Sometime(pak.AllFire(n)), Agent: "General", Action: "fire"}

	run := func(b *testing.B, engines func() []*pak.Engine) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			es := engines()
			items := make([]pak.EnvelopeItem, len(es))
			for j, e := range es {
				items[j] = pak.EnvelopeItem{Assignment: "loss=" + losses[j], Engine: e}
			}
			out, err := pak.EvalEnvelope(pak.EnvelopeQuery{Inner: inner, Items: items}, pak.WithParallelism(1))
			if err != nil || out.Result.Envelope.Visited != len(losses) {
				b.Fatalf("sweep: %v (%+v)", err, out.Result.Envelope)
			}
			// The sweep also gates Theorem 4.2 per assignment: the
			// Definition 4.1 scan reads the fact-extension sets at every
			// local state — the heaviest table the chain shares.
			for _, e := range es {
				if _, err := e.LocalStateIndependence(inner.Fact, "General", "fire"); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("independent-engines", func(b *testing.B) {
		run(b, func() []*pak.Engine {
			es := make([]*pak.Engine, len(systems))
			for j, sys := range systems {
				es[j] = pak.NewEngine(sys)
			}
			return es
		})
	})

	b.Run("seeded-chain", func(b *testing.B) {
		run(b, func() []*pak.Engine {
			es := make([]*pak.Engine, len(systems))
			var prev *pak.Engine
			for j, sys := range systems {
				e, shared := pak.NewEngineSeeded(sys, prev)
				if prev != nil && !shared {
					b.Fatal("loss neighbours refused to share; the benchmark's premise is broken")
				}
				es[j], prev = e, e
			}
			return es
		})
	})
}

// BenchmarkIndependenceIncremental prices the Definition 4.1 scan under
// the occurrence-index rewrite on a deep random system (hundreds of
// local states). "cold" pays everything — the performance index, the
// fact-extension scans, the per-local fold; "seeded-neighbour" starts
// from a shape-equal neighbour's warm structural tables, as each
// assignment of a sweep does, leaving only the per-local measure
// checks. The gap is the work structure sharing removes from every
// sweep assignment after the first.
func BenchmarkIndependenceIncremental(b *testing.B) {
	sys, err := randsys.Generate(randsys.Config{
		Agents: 2, Depth: 6, MaxBranch: 3, MaxInitial: 2,
		ObsAlphabet: 64, ActionTime: 2, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	agent := sys.Agents()[0]
	fact := pak.Does(agent, randsys.DesignatedAction)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := pak.NewEngine(sys)
			if _, err := e.LocalStateIndependence(fact, agent, randsys.DesignatedAction); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("seeded-neighbour", func(b *testing.B) {
		warm := pak.NewEngine(sys)
		if _, err := warm.LocalStateIndependence(fact, agent, randsys.DesignatedAction); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, shared := pak.NewEngineSeeded(sys, warm)
			if !shared {
				b.Fatal("identical systems refused to share")
			}
			if _, err := e.LocalStateIndependence(fact, agent, randsys.DesignatedAction); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnvelopeSampledPrune compares the exhaustive envelope sweep
// against the sampled-first sweep over the same space (the
// BenchmarkEnvelopeSharedCache workload on cold engines, where exact
// work dominates): the coarse seeded pass estimates every assignment,
// then exact evaluation runs only where the confidence interval says
// the envelope could still move. The "pruned" metric counts exact
// evaluations skipped per op — the work the approximate tier saves,
// bought at a 1−N·δ (not certain) correctness guarantee. On this small
// comparator workload (chosen to match BenchmarkEnvelopeSharedCache)
// the sampling pass costs more than the exact folds it skips; the
// pruned/op metric is the point — each skip is one full unfold+fold
// avoided, and that cost grows exponentially in system size while the
// sampling pass grows only with the run length.
func BenchmarkEnvelopeSampledPrune(b *testing.B) {
	const space = "sweep(nsquad,n=3,loss=0..1/2/1/10)"
	inner := pak.ConstraintQuery{Fact: pak.AllFire(3), Agent: "General", Action: "fire"}
	rs, err := pak.ResolveSweep(space)
	if err != nil {
		b.Fatal(err)
	}

	// Cold items per iteration: pruning saves unfold + exact fold work,
	// which warm engine caches would otherwise hide.
	items := func() []pak.EnvelopeItem {
		it, err := pak.SweepItems(rs)
		if err != nil {
			b.Fatal(err)
		}
		return it
	}

	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := pak.EvalEnvelope(pak.EnvelopeQuery{Inner: inner, Items: items()})
			if err != nil || out.Result.Envelope.Visited != 6 {
				b.Fatalf("sweep: %v (%+v)", err, out.Result.Envelope)
			}
		}
	})

	b.Run("sampled-first", func(b *testing.B) {
		spec := pak.ApproxSpec{Samples: 2400, Seed: 21}
		pruned := 0
		for i := 0; i < b.N; i++ {
			out, err := pak.EvalEnvelopeSampled(pak.EnvelopeQuery{Inner: inner, Items: items()}, spec)
			if err != nil || out.Err != nil {
				b.Fatalf("sampled sweep: %v / %v", err, out.Err)
			}
			if len(out.Pruned) == 0 {
				b.Fatal("sampled sweep pruned nothing; the benchmark's premise is broken")
			}
			pruned += len(out.Pruned)
		}
		b.ReportMetric(float64(pruned)/float64(b.N), "pruned/op")
	})
}

// BenchmarkMeasureKernel pins the exact-arithmetic measure kernel
// against the per-run big.Rat reference fold, on both kernel tiers
// (shared denominator in uint64 vs big.Int) and on both hot shapes
// (plain Measure and the fused conditional). The kernel must hold a
// ≥3x ns/op and ≥5x allocs/op advantage on the fold benchmarks — the
// PR's acceptance gate, re-recorded in BENCHMARKS.md.
func BenchmarkMeasureKernel(b *testing.B) {
	// uint64 tier: a deep random system with small edge denominators.
	cfg := randsys.Default(7)
	cfg.Depth = 6
	cfg.ActionTime = 3
	small, err := randsys.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}

	// big.Int tier: four levels of branching with distinct ~2³² prime
	// denominators make the shared denominator ≈ 2¹²⁸, overflowing the
	// word tier (the overflow proof in internal/pps/measure.go gates on
	// D alone).
	primes := []int64{4294967291, 4294967279, 4294967231, 4294967197}
	bld := pps.NewBuilder("i")
	level := []pps.NodeID{bld.Init(pak.Rat(1, 1), "e", "g0")}
	serial := 0
	for depth, p := range primes {
		var next []pps.NodeID
		for _, u := range level {
			rest := p
			for k := 0; k < 4; k++ {
				serial++
				pr := pak.Rat(1, p)
				if k == 3 {
					pr = pak.Rat(rest, p)
				} else {
					rest--
				}
				next = append(next, bld.Child(u, pps.Step{
					Pr: pr, Acts: []string{"a"}, Env: "e",
					Locals: []string{fmt.Sprintf("g%d-%d", depth+1, serial)},
				}))
			}
		}
		level = next
	}
	big, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}

	// naiveCond replicates the pre-kernel conditional: materialize the
	// intersection, fold both measures per run, divide.
	naiveCond := func(sys *pak.System, a, ev *runset.Set) *bigmath.Rat {
		mb := sys.MeasureNaive(ev)
		return new(bigmath.Rat).Quo(sys.MeasureNaive(a.Intersect(ev)), mb)
	}

	event := func(sys *pak.System, seed uint64) *runset.Set {
		ev := sys.NewSet()
		x := seed
		for r := 0; r < sys.NumRuns(); r++ {
			x = x*6364136223846793005 + 1442695040888963407
			if x&1 == 1 {
				ev.Add(r)
			}
		}
		return ev
	}

	for _, tier := range []struct {
		name string
		sys  *pak.System
	}{{"int64", small}, {"big", big}} {
		a, c := event(tier.sys, 3), event(tier.sys, 99)
		want := tier.sys.MeasureNaive(a).RatString()
		b.Run(tier.name+"/measure/kernel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tier.sys.Measure(a).RatString() != want {
					b.Fatal("kernel ≠ naive")
				}
			}
		})
		b.Run(tier.name+"/measure/naive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if tier.sys.MeasureNaive(a).RatString() != want {
					b.Fatal("naive drifted")
				}
			}
		})
		wantCond := naiveCond(tier.sys, a, c).RatString()
		b.Run(tier.name+"/cond/kernel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, ok := tier.sys.Cond(a, c)
				if !ok || got.RatString() != wantCond {
					b.Fatal("kernel cond ≠ naive")
				}
			}
		})
		b.Run(tier.name+"/cond/naive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if naiveCond(tier.sys, a, c).RatString() != wantCond {
					b.Fatal("naive cond drifted")
				}
			}
		})
	}
}
