// Package pak is an executable reproduction of "Probably Approximately
// Knowing" (Zamir & Moses, PODC 2020): an exact epistemic-probabilistic
// model checker for finite purely probabilistic systems (pps).
//
// The paper studies the interdependence between the actions an agent
// performs and its subjective probabilistic beliefs, in protocols that
// satisfy probabilistic constraints of the form "condition φ holds with
// probability at least p when action α is performed". Its main theorem
// (Theorem 6.2) is a probabilistic analogue of the Knowledge of
// Preconditions principle: under a local-state independence condition, the
// expected degree of the agent's belief in φ when it performs α equals
// µ(φ@α | α) exactly. The headline corollary (Corollary 7.2) is the PAK
// principle: if the constraint holds with threshold 1−ε², then with
// probability at least 1−ε the agent's belief is at least 1−ε when it acts
// — the agent probably approximately knows φ.
//
// This package is the public facade over the library:
//
//   - systems: build pps trees directly (NewBuilder) or by unfolding a
//     synchronous joint protocol (Unfold, FuncModel) over substrates such
//     as the lossy message network (NewNet);
//   - facts: the combinator language for conditions (Does, LocalIs, And,
//     Not, Sometime, ...) with semantic classifiers (IsPastBased,
//     IsRunBased);
//   - beliefs: NewEngine answers β_i(φ), µ(φ@α|α), expected beliefs,
//     threshold measures, knowledge queries, local-state independence, and
//     machine-checks every theorem in the paper (CheckExpectation,
//     CheckPAK, ...); the engine is concurrency-safe and memoizes shared
//     work (performance indexes, fact extensions, beliefs, independence
//     scans) so overlapping queries get cheaper;
//   - queries: the unified query API reifies every analysis as a value
//     (BeliefQuery, ConstraintQuery, ExpectationQuery, ThresholdQuery,
//     TheoremQuery, IndependenceQuery, TimelineQuery), evaluated through
//     Eval or the parallel EvalBatch (WithParallelism, WithCache) to a
//     uniform QueryResult of exact rationals, verdicts and witness
//     run-sets; EvalMultiBatch/EvalMultiSystems shard batches across
//     several engines through one bounded worker pool;
//     EvalStream/EvalMultiStream are their streaming forms — one
//     QueryFrame per query as its worker finishes, a terminal status
//     frame (complete | deadline | cancelled), and in-flight work
//     drained on context expiry so the finished prefix is never lost
//     (the batch evaluators are consumers of the same stream); query
//     lists serialize to JSON (MarshalQueryBatch, ParseQueryBatch) in
//     the format the CLI tools and the pakd service exchange;
//   - a second exact backend: WithBackend routes belief, constraint and
//     threshold queries over past-based facts (CanSolveLP) to an
//     independent engine solving exact-rational linear programs over
//     belief-class columns instead of enumerating runs — BackendLP is
//     strict (queries outside the fragment fail with
//     ErrBackendUnsupported), BackendAuto falls back to enumeration per
//     query, and both backends are differentially tested to
//     byte-identical wire results on the whole fragment (experiment
//     E18; pakcheck -backend; the service's "backend" request knob);
//   - scenarios by name: the registry (Scenarios, BuildScenario) resolves
//     compact specs — "fsquad", "nsquad(5)", "random(seed=42)" — to
//     systems with validated, defaulted parameters; space-valued specs
//     ("sweep(nsquad,loss=0.0..0.5/0.1)", ParseSweepSpec/ResolveSweep)
//     name whole adversary spaces, each assignment resolving to a
//     canonical system spec; the generated SCENARIOS.md catalogs every
//     registered scenario with its sweep example;
//   - envelopes: EvalSweep/EvalEnvelope/EnvelopeStream fold any
//     single-valued query's [min, max] across an adversary space —
//     exact bounds with witness assignments (EnvelopeRange), streamed
//     progressively with the running envelope per frame, partial but
//     sound under deadlines (visited/total labeled), engines shared
//     through the same cache as every other request; MetricQuery sweeps
//     opaque in-process metrics;
//   - the approximate tier: WithApprox(ApproxSpec{...}) answers
//     supported queries (CanApprox: constraint, expectation, threshold,
//     belief-at-local) approx-first — a seeded, deterministic sampled
//     estimate with an exact-rational Hoeffding confidence interval
//     (QueryEstimate, stage StageApprox) streamed strictly before the
//     refined exact result (stage StageExact, carrying the estimate and
//     a ciCovered self-check); Only skips refinement, a deadline
//     mid-refinement leaves the estimate standing as the slot's sound
//     answer, and the same seed and budget produce byte-identical
//     estimates at any parallelism; EvalEnvelopeSampled is the
//     sampled-first sweep — exact evaluation only where an assignment's
//     interval could still attain the envelope, the rest pruned
//     (correct w.p. >= 1 − N·Delta);
//   - the service: ServiceHandler/NewService expose the registry and the
//     query layer over HTTP/JSON (what cmd/pakd serves) — named systems,
//     query-batch documents, cross-system fan-out, an NDJSON streaming
//     endpoint (/v1/eval/stream: one result frame per query the moment
//     it finishes, golden-pinned frame shapes; an "approx" request knob
//     turns any eval approx-first, estimate frames before exact frames,
//     with the sampling model memoized beside the engine), adversary
//     envelopes
//     (/v1/envelope and /v1/envelope/stream: a query's exact [min, max]
//     over a sweep(...) space, witness assignments included) and
//     engine-cache stats (/v1/stats) — hardened for sustained traffic:
//     per-request
//     deadlines with cooperative cancellation (WithServiceRequestTimeout,
//     WithEvalContext; expiry answers 504 carrying every finished result
//     plus per-slot deadline errors, never discarding completed work), a
//     size-bounded LRU engine cache whose eviction is invisible
//     (WithServiceEngineCache — rebuilt engines answer byte-identically,
//     experiment E17), and concurrent singleflight cold builds;
//     cmd/pakload + internal/load drive it all under concurrent load
//     with latency/error-taxonomy JSON reports (cold/warm latency split
//     per scenario); see examples/service for the walkthrough (start
//     pakd, POST a batch with curl, read the exact JSON results);
//   - persistent results: WithServiceResultStore (pakd -store-dir)
//     installs a content-addressed store — keys are SHA-256 over the
//     canonical system spec × canonical query document — as a
//     read-through/write-behind tier, so a restarted server answers
//     previously computed slots byte-identically with zero engine
//     rebuilds; only deterministic, complete, exact results are
//     persisted (never error slots, estimates, or slots cut by a
//     deadline), reads are integrity-checked (a corrupt entry is
//     counted and recomputed, never served — StoreErrCorrupt), and
//     OpenDiskStore's writes are crash-safe (temp-then-rename);
//     cmd/pakstore lists, verifies and garbage-collects a store
//     offline; WithServiceClientQuota (pakd -client-quota) caps each
//     client's concurrent in-flight evaluation requests with
//     golden-pinned 429s;
//   - the paper's own systems: Figure1, That (Figure 2 / Theorem 5.2), and
//     the relaxed firing squad FiringSquad of Example 1 with its Section 8
//     improvement;
//   - estimation: NewSampler and NewProtocolSampler provide seeded
//     Monte-Carlo cross-validation with Hoeffding confidence radii;
//   - group epistemics: NewSlice computes Monderer–Samet probabilistic
//     common belief over time slices;
//   - nondeterminism: NewSpace/Resolve fix adversaries per the paper's
//     Section 2; ConstraintEnvelope/MetricEnvelope analyze ranges across
//     a resolved family (thin shims over the same envelope fold the
//     sweeps use, sharing each instance's engine across calls);
//   - serialization: MarshalSystem/UnmarshalSystem and ParseFact for the
//     CLI tools.
//
// All probabilities are exact rationals (math/big.Rat); the paper's
// numbers (0.99, 0.991, 990/991, (p−ε)/(1−ε), ...) are reproduced as
// rational identities, not floating-point approximations. Measure
// arithmetic runs on an exact-arithmetic kernel: each system lazily
// precomputes a shared denominator D (the lcm of its run-probability
// denominators) with scaled integer numerators, so an event's measure
// is a word-at-a-time integer sum over the run bitset with exactly one
// final rational reduction — in machine words when D fits a uint64
// (provably overflow-free, since every event sum is bounded by D),
// falling back to big.Int otherwise — and conditional measures fuse
// both sums into one pass with D cancelling; results are byte-identical
// to the naive per-run fold, which the property tests and the
// two-backend differential harness pin. See DESIGN.md
// for the architecture, EXPERIMENTS.md for the paper-vs-measured record,
// and SCENARIOS.md for the scenario catalog.
package pak
