package pak_test

import (
	"errors"
	"strings"
	"testing"

	"pak"
)

// TestScenarioRoundTripIdenticalResults is the registry-reference
// round-trip contract: a scenario spec (name + params) and a query
// batch go through JSON and back, and the parsed batch evaluated on the
// registry-built system returns a Result set exactly equal to the
// original batch on the directly built system.
func TestScenarioRoundTripIdenticalResults(t *testing.T) {
	specs := []string{
		"fsquad",
		"fsquad(loss=1/4,improved=true)",
		"nsquad(3)",
		"that(p=9/10,eps=1/10)",
		"random(seed=7,agents=3)",
	}
	for _, spec := range specs {
		sys, err := pak.BuildScenario(spec)
		if err != nil {
			t.Fatalf("BuildScenario(%q): %v", spec, err)
		}
		qs := scenarioBatch(t, spec)

		doc, err := pak.MarshalQueryBatch(qs)
		if err != nil {
			t.Fatalf("%s: MarshalQueryBatch: %v", spec, err)
		}
		parsed, err := pak.ParseQueryBatch(doc)
		if err != nil {
			t.Fatalf("%s: ParseQueryBatch: %v", spec, err)
		}
		if len(parsed) != len(qs) {
			t.Fatalf("%s: parsed %d queries, want %d", spec, len(parsed), len(qs))
		}

		want, err := pak.EvalSystem(sys, qs)
		if err != nil {
			t.Fatalf("%s: eval original batch: %v", spec, err)
		}
		sysAgain, err := pak.BuildScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pak.EvalSystem(sysAgain, parsed)
		if err != nil {
			t.Fatalf("%s: eval parsed batch: %v", spec, err)
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.Kind != g.Kind || w.Verdict != g.Verdict {
				t.Errorf("%s query %d: (%s,%s), want (%s,%s)", spec, i, g.Kind, g.Verdict, w.Kind, w.Verdict)
			}
			if (w.Value == nil) != (g.Value == nil) || (w.Value != nil && w.Value.Cmp(g.Value) != 0) {
				t.Errorf("%s query %d: value %v, want %v", spec, i, g.Value, w.Value)
			}
			for k, wv := range w.Values {
				if gv, ok := g.Values[k]; !ok || gv.Cmp(wv) != 0 {
					t.Errorf("%s query %d: values[%q] = %v, want %v", spec, i, k, gv, wv)
				}
			}
		}
	}
}

// scenarioBatch returns a serializable analysis batch appropriate to
// the spec's agents and proper action.
func scenarioBatch(t *testing.T, spec string) []pak.Query {
	t.Helper()
	var fact pak.Fact
	var agent, action string
	switch {
	case strings.HasPrefix(spec, "fsquad"):
		fact = pak.And(pak.Does("Alice", "fire"), pak.Does("Bob", "fire"))
		agent, action = "Alice", "fire"
	case strings.HasPrefix(spec, "nsquad"):
		fact = pak.AllFire(3)
		agent, action = "General", "fire"
	case strings.HasPrefix(spec, "that"):
		fact = pak.LocalContains("j", "bit=1")
		agent, action = "i", "alpha"
	case strings.HasPrefix(spec, "random"):
		fact = pak.LocalContains("a2", "o0")
		agent, action = "a0", "alpha*"
	default:
		t.Fatalf("no batch template for %q", spec)
	}
	return []pak.Query{
		pak.ConstraintQuery{Fact: fact, Agent: agent, Action: action, Threshold: pak.Rat(1, 2)},
		pak.ExpectationQuery{Fact: fact, Agent: agent, Action: action},
		pak.BeliefQuery{Fact: fact, Agent: agent, Action: action},
		pak.IndependenceQuery{Fact: fact, Agent: agent, Action: action},
		pak.TheoremQuery{Theorem: pak.TheoremExpectation, Fact: fact, Agent: agent, Action: action},
		pak.TheoremQuery{Theorem: pak.TheoremPAK, Fact: fact, Agent: agent, Action: action, Eps: pak.Rat(1, 4)},
	}
}

func TestBuildScenarioErrors(t *testing.T) {
	if _, err := pak.BuildScenario("nosuch"); !errors.Is(err, pak.ErrUnknownScenario) {
		t.Errorf("BuildScenario(nosuch) = %v, want ErrUnknownScenario", err)
	}
	if _, err := pak.BuildScenario("nsquad(n=zero)"); !errors.Is(err, pak.ErrBadScenarioSpec) {
		t.Errorf("BuildScenario(nsquad(n=zero)) = %v, want ErrBadScenarioSpec", err)
	}
}

func TestScenarioCatalogListsEverything(t *testing.T) {
	catalog := pak.ScenarioCatalog()
	for _, name := range pak.Scenarios().Names() {
		if !strings.Contains(catalog, "## "+name+"\n") {
			t.Errorf("ScenarioCatalog() is missing %q", name)
		}
	}
}

// TestEvalMultiSystems exercises the facade fan-out: one batch across
// two registry systems, parallel equal to serial.
func TestEvalMultiSystems(t *testing.T) {
	sysA, err := pak.BuildScenario("nsquad(2)")
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := pak.BuildScenario("nsquad(3)")
	if err != nil {
		t.Fatal(err)
	}
	qs := []pak.Query{
		pak.ConstraintQuery{Fact: pak.Does("General", "fire"), Agent: "General", Action: "fire"},
		pak.ExpectationQuery{Fact: pak.AllFire(2), Agent: "General", Action: "fire"},
	}
	parallel, err := pak.EvalMultiSystems([]*pak.System{sysA, sysB}, qs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := pak.EvalMultiSystems([]*pak.System{sysA, sysB}, qs, pak.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != 2 || len(serial) != 2 {
		t.Fatalf("system counts: %d, %d", len(parallel), len(serial))
	}
	for i := range parallel {
		for j := range parallel[i] {
			p, s := parallel[i][j], serial[i][j]
			if (p.Value == nil) != (s.Value == nil) || (p.Value != nil && p.Value.Cmp(s.Value) != 0) {
				t.Errorf("system %d query %d: parallel %v != serial %v", i, j, p.Value, s.Value)
			}
		}
	}
}
