//go:build race

package pak_test

// raceEnabled reports whether the race detector is instrumenting this
// test binary (see race_off_test.go for the counterpart). The stress
// tests below run only under -race: they exist to let the detector see
// the service's shared state — the LRU engine cache, the singleflight
// build table, the per-request worker pools — under real contention,
// and to pin that concurrency never reorders or tears results.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pak"
)

const raceEnabled = true

// raceEvalBody is a two-query batch against the named systems.
func raceEvalBody(t *testing.T, n int, systems ...string) string {
	t.Helper()
	batch, err := pak.MarshalQueryBatch([]pak.Query{
		pak.ConstraintQuery{Fact: pak.AllFire(n), Agent: "General", Action: "fire"},
		pak.ExpectationQuery{Fact: pak.AllFire(n), Agent: "General", Action: "fire"},
	})
	if err != nil {
		t.Fatal(err)
	}
	quoted := make([]string, len(systems))
	for i, s := range systems {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf(`{"systems": [%s], "queries": %s}`, strings.Join(quoted, ","), batch)
}

// TestServiceRaceStress hammers one service with concurrent /v1/eval
// requests hitting the same spec, equivalent spellings of that spec,
// and different specs — under an engine cache small enough that the
// traffic itself forces evictions and rebuilds. Every response must be
// a 200 whose `[system][query]` shape and exact values match the
// request's canonical expectation byte for byte: torn cache state,
// reordered slots or a half-built engine would all surface here (and
// the race detector sees every interleaving the test provokes).
func TestServiceRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("race stress in -short")
	}
	ts := httptest.NewServer(pak.ServiceHandler(
		pak.WithServiceEngineCache(2), // three distinct specs below → guaranteed eviction churn
		pak.WithServiceRequestTimeout(time.Minute),
	))
	t.Cleanup(ts.Close)

	// Three request shapes over three canonical systems; shapes 0 and 1
	// address nsquad(2) through different spellings, so they must share
	// one engine and one answer.
	bodies := []string{
		raceEvalBody(t, 2, "nsquad(2)"),
		raceEvalBody(t, 2, "nsquad(n=2,loss=1/10,improved=false)"),
		raceEvalBody(t, 3, "nsquad(3)"),
		raceEvalBody(t, 2, "nsquad(2)", "fsquad"),
	}

	// Reference responses, taken serially before the storm. The stress
	// assertion is byte identity against these — stronger than "no
	// error", it pins ordering and exact values.
	want := make([]string, len(bodies))
	for i, body := range bodies {
		if want[i] = postForBody(t, ts.URL, body); want[i] == "" {
			t.Fatalf("reference request %d failed before the storm", i)
		}
	}

	const (
		workers  = 8
		requests = 15 // per worker
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				shape := (w + r) % len(bodies)
				got := postForBody(t, ts.URL, bodies[shape])
				if got == "" {
					return // postForBody already reported the failure
				}
				if got != want[shape] {
					t.Errorf("worker %d req %d: response for shape %d diverged under load:\ngot  %s\nwant %s",
						w, r, shape, got, want[shape])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestServiceRaceStressColdStorm: all workers race on a single cold
// spec so the singleflight build path itself runs under the detector;
// every client must get the one shared engine's exact answer.
func TestServiceRaceStressColdStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("race stress in -short")
	}
	ts := httptest.NewServer(pak.ServiceHandler(pak.WithServiceEngineCache(4)))
	t.Cleanup(ts.Close)
	body := raceEvalBody(t, 4, "nsquad(4)") // expensive enough that the build overlaps the storm

	const workers = 8
	responses := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			responses[w] = postForBody(t, ts.URL, body)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if responses[w] != responses[0] {
			t.Errorf("worker %d's response differs from worker 0's:\n%s\nvs\n%s",
				w, responses[w], responses[0])
		}
	}
	// And the cold storm's answer must carry real values in order.
	var out pak.ServiceEvalResponse
	if err := json.Unmarshal([]byte(responses[0]), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0].Results) != 2 {
		t.Fatalf("response shape wrong: %+v", out)
	}
	if out.Results[0].Results[0].Value == "" || out.Results[0].Results[0].Error != "" {
		t.Errorf("slot [0][0] not exact: %+v", out.Results[0].Results[0])
	}
}

// postForBody POSTs to /v1/eval and returns the response body,
// requiring a 200. It reports failures with t.Errorf (never FailNow):
// the stress tests call it from worker goroutines, where t.Fatal is
// off-contract.
func postForBody(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("POST /v1/eval: %v", err)
		return ""
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("read response body: %v", err)
		return ""
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d: %s", resp.StatusCode, data)
		return ""
	}
	return string(data)
}
