//go:build race

package pak_test

// raceEnabled reports whether the race detector is instrumenting this
// test binary (see race_off_test.go for the counterpart).
const raceEnabled = true
